//! Machine-readable phase benchmark recorder (`BENCH_6.json`).
//!
//! Measures median per-phase wall times (locate / peel / finish / total, in
//! microseconds) of the four search algorithms on the mini presets, using
//! the [`PhaseTimings`](ctc_core::PhaseTimings) every search already
//! reports. Unlike the criterion benches (relative, human-read), this
//! binary emits a stable JSON document that `scripts/bench_record.sh`
//! commits to the repo, so the locate- and peel-phase trajectory of the
//! query hot path is pinned in version control and checkable in CI.
//!
//! ```text
//! bench_record [--samples N] [--quick] [--out BENCH_6.json] [--check BENCH_6.json]
//! ```
//!
//! * default: measure and print the JSON measurement object to stdout;
//! * `--out FILE`: measure and merge into `FILE` — an existing `before`
//!   section is preserved (the pre-refactor baseline), the measurement
//!   becomes `after`; with no existing file both sections get the
//!   measurement;
//! * `--check FILE`: no full measurement — validate the committed file's
//!   schema, assert the recorded `after` medians hold the ≥ 2× locate bar
//!   (mini-facebook lctc) and the no-regression bars (locate on
//!   mini-facebook basic/truss, peel on mini-facebook bd/lctc), and run
//!   one quick measurement pass so the harness itself cannot rot.
//!
//! Accounting: per sample, `total_us` is the sum of the per-query
//! `timings.total` (not an outer wall clock, which also billed harness
//! overhead), and `finish_us` is accumulated as `total − locate − peel`
//! in integer microseconds — so within every sample the four phases sum
//! exactly. Medians are taken per phase independently, so the *recorded*
//! medians may be off-by-a-few from summing; the invariant lives at the
//! sample level and in the server's `/stats` counters.

use ctc_core::{CommunityEngine, SearchAlgo};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_server::Json;

const PRESETS: [&str; 2] = ["mini-facebook", "mini-dblp"];
const ALGOS: [(&str, SearchAlgo); 4] = [
    ("basic", SearchAlgo::Basic),
    ("bd", SearchAlgo::BulkDelete),
    ("lctc", SearchAlgo::Local),
    ("truss", SearchAlgo::TrussOnly),
];
const NET_SEED: u64 = 7;
const QUERY_SEED: u64 = 5;
const QUERY_SETS: usize = 3;

fn median_us(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One preset × algo measurement: medians over `samples` runs, where each
/// run answers every query set once and sums the per-phase times.
fn measure_algo(
    engine: &CommunityEngine,
    queries: &[Vec<ctc_graph::VertexId>],
    algo: SearchAlgo,
    samples: usize,
) -> Json {
    let mut locate = Vec::with_capacity(samples);
    let mut peel = Vec::with_capacity(samples);
    let mut finish = Vec::with_capacity(samples);
    let mut total = Vec::with_capacity(samples);
    // One warmup pass: scratch pools fill, page cache settles.
    for q in queries {
        let _ = engine.search(q, algo);
    }
    for _ in 0..samples {
        let (mut l, mut p, mut f, mut t) = (0u64, 0u64, 0u64, 0u64);
        for q in queries {
            let c = engine.search(q, algo).expect("mini preset query answers");
            let lu = c.timings.locate.as_micros() as u64;
            let pu = c.timings.peel.as_micros() as u64;
            let tu = c.timings.total.as_micros() as u64;
            l += lu;
            p += pu;
            f += tu.saturating_sub(lu).saturating_sub(pu);
            t += tu;
        }
        locate.push(l);
        peel.push(p);
        finish.push(f);
        total.push(t);
    }
    Json::Object(vec![
        ("locate_us".into(), Json::Uint(median_us(locate))),
        ("peel_us".into(), Json::Uint(median_us(peel))),
        ("finish_us".into(), Json::Uint(median_us(finish))),
        ("total_us".into(), Json::Uint(median_us(total))),
        ("samples".into(), Json::Uint(samples as u64)),
    ])
}

fn measure(samples: usize, query_sets: usize) -> Json {
    let mut presets = Vec::new();
    for preset in PRESETS {
        let name = preset.strip_prefix("mini-").expect("mini preset");
        let net = mini_network(name, NET_SEED).expect("known preset");
        let g = net.graph;
        let mut qg = QueryGenerator::new(&g, QUERY_SEED);
        let queries: Vec<_> = (0..query_sets)
            .map(|_| {
                qg.sample(3, DegreeRank::top(0.8), 2)
                    .expect("mini preset yields queries")
            })
            .collect();
        let engine = CommunityEngine::build(g);
        let mut algos = Vec::new();
        for (label, algo) in ALGOS {
            algos.push((
                label.to_string(),
                measure_algo(&engine, &queries, algo, samples),
            ));
        }
        presets.push((preset.to_string(), Json::Object(algos)));
    }
    Json::Object(presets)
}

fn document(before: Json, after: Json, samples: usize) -> Json {
    Json::Object(vec![
        ("schema".into(), Json::Str("ctc-bench-6".into())),
        ("unit".into(), Json::Str("microseconds_median".into())),
        ("samples".into(), Json::Uint(samples as u64)),
        ("before".into(), before),
        ("after".into(), after),
    ])
}

fn phase_of<'a>(
    doc: &'a Json,
    section: &str,
    preset: &str,
    algo: &str,
) -> Result<&'a Json, String> {
    doc.get(section)
        .and_then(|s| s.get(preset))
        .and_then(|p| p.get(algo))
        .ok_or_else(|| format!("missing {section}.{preset}.{algo}"))
}

fn us_of(doc: &Json, section: &str, preset: &str, algo: &str, field: &str) -> Result<u64, String> {
    phase_of(doc, section, preset, algo)?
        .get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{section}.{preset}.{algo}.{field} missing"))
}

/// Validates the committed document and the recorded improvements.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parsing {path}: {e:?}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some("ctc-bench-6") {
        return Err("schema field must be \"ctc-bench-6\"".into());
    }
    for section in ["before", "after"] {
        for preset in PRESETS {
            for (algo, _) in ALGOS {
                for field in ["locate_us", "peel_us", "finish_us", "total_us"] {
                    us_of(&doc, section, preset, algo, field)?;
                }
            }
        }
    }
    // Guard carried over from the PR-5 peel refactor: the rebuilt locate
    // path must not give the peel-phase wins back. (The 2× peel bar itself
    // was measured against the *pre-incremental* baseline and lives in
    // BENCH_5.json; this document's `before` is already post-PR-5.)
    for algo in ["bd", "lctc"] {
        let before_peel = us_of(&doc, "before", "mini-facebook", algo, "peel_us")?;
        let after_peel = us_of(&doc, "after", "mini-facebook", algo, "peel_us")?;
        if after_peel > before_peel {
            return Err(format!(
                "mini-facebook/{algo}: recorded peel median regressed \
                 ({before_peel}µs → {after_peel}µs)"
            ));
        }
    }
    // The bars this PR records: the bitset-kernel rebuild must halve the
    // LCTC locate median, and the PR-5 locate regression on the
    // non-decomposing algorithms must stay erased (no regression vs the
    // pre-rebuild baseline).
    let lctc_before = us_of(&doc, "before", "mini-facebook", "lctc", "locate_us")?;
    let lctc_after = us_of(&doc, "after", "mini-facebook", "lctc", "locate_us")?;
    if lctc_after.saturating_mul(2) > lctc_before {
        return Err(format!(
            "mini-facebook/lctc: recorded locate median {lctc_after}µs is not ≥2× \
             better than the {lctc_before}µs baseline"
        ));
    }
    for algo in ["basic", "truss"] {
        let before = us_of(&doc, "before", "mini-facebook", algo, "locate_us")?;
        let after = us_of(&doc, "after", "mini-facebook", algo, "locate_us")?;
        if after > before {
            return Err(format!(
                "mini-facebook/{algo}: recorded locate median regressed \
                 ({before}µs → {after}µs)"
            ));
        }
    }
    // Smoke the recorder itself so the harness cannot silently rot.
    let quick = measure(1, 1);
    for preset in PRESETS {
        for (algo, _) in ALGOS {
            quick
                .get(preset)
                .and_then(|p| p.get(algo))
                .ok_or_else(|| format!("quick measurement lost {preset}/{algo}"))?;
        }
    }
    println!(
        "bench_record --check: {path} ok (schema, ≥2× lctc locate bar, \
         no locate/peel regressions, harness smoke)"
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(path) = flag("--check") {
        return check(&path);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let samples: usize = match flag("--samples") {
        Some(raw) => raw.parse().map_err(|_| format!("bad --samples {raw:?}"))?,
        None if quick => 3,
        None => 15,
    };
    let query_sets = if quick { 1 } else { QUERY_SETS };
    let measured = measure(samples, query_sets);
    match flag("--out") {
        None => {
            println!("{}", document(measured.clone(), measured, samples).encode());
        }
        Some(path) => {
            let before = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|doc| doc.get("before").cloned())
                .unwrap_or_else(|| measured.clone());
            let doc = document(before, measured, samples);
            std::fs::write(&path, format!("{}\n", doc.encode()))
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_record: {msg}");
            std::process::ExitCode::FAILURE
        }
    }
}
