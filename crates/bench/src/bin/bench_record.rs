//! Machine-readable peel-phase benchmark recorder (`BENCH_5.json`).
//!
//! Measures median per-phase wall times (locate / peel / total, in
//! microseconds) of the four search algorithms on the mini presets, using
//! the [`PhaseTimings`](ctc_core::PhaseTimings) every search already
//! reports. Unlike the criterion benches (relative, human-read), this
//! binary emits a stable JSON document that `scripts/bench_record.sh`
//! commits to the repo, so the peel-phase trajectory of the query hot path
//! is pinned in version control and checkable in CI.
//!
//! ```text
//! bench_record [--samples N] [--quick] [--out BENCH_5.json] [--check BENCH_5.json]
//! ```
//!
//! * default: measure and print the JSON measurement object to stdout;
//! * `--out FILE`: measure and merge into `FILE` — an existing `before`
//!   section is preserved (the pre-refactor baseline), the measurement
//!   becomes `after`; with no existing file both sections get the
//!   measurement;
//! * `--check FILE`: no full measurement — validate the committed file's
//!   schema, assert the recorded `after` peel medians hold the ≥ 2×
//!   improvement on the mini-facebook bd/lctc benches, and run one quick
//!   measurement pass so the harness itself cannot silently rot.

use ctc_core::{CommunityEngine, SearchAlgo};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_server::Json;
use std::time::Instant;

const PRESETS: [&str; 2] = ["mini-facebook", "mini-dblp"];
const ALGOS: [(&str, SearchAlgo); 4] = [
    ("basic", SearchAlgo::Basic),
    ("bd", SearchAlgo::BulkDelete),
    ("lctc", SearchAlgo::Local),
    ("truss", SearchAlgo::TrussOnly),
];
const NET_SEED: u64 = 7;
const QUERY_SEED: u64 = 5;
const QUERY_SETS: usize = 3;

fn median_us(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One preset × algo measurement: medians over `samples` runs, where each
/// run answers every query set once and sums the per-phase times.
fn measure_algo(
    engine: &CommunityEngine,
    queries: &[Vec<ctc_graph::VertexId>],
    algo: SearchAlgo,
    samples: usize,
) -> Json {
    let mut locate = Vec::with_capacity(samples);
    let mut peel = Vec::with_capacity(samples);
    let mut total = Vec::with_capacity(samples);
    // One warmup pass: scratch pools fill, page cache settles.
    for q in queries {
        let _ = engine.search(q, algo);
    }
    for _ in 0..samples {
        let (mut l, mut p) = (0u64, 0u64);
        let t0 = Instant::now();
        for q in queries {
            let c = engine.search(q, algo).expect("mini preset query answers");
            l += c.timings.locate.as_micros() as u64;
            p += c.timings.peel.as_micros() as u64;
        }
        total.push(t0.elapsed().as_micros() as u64);
        locate.push(l);
        peel.push(p);
    }
    Json::Object(vec![
        ("locate_us".into(), Json::Uint(median_us(locate))),
        ("peel_us".into(), Json::Uint(median_us(peel))),
        ("total_us".into(), Json::Uint(median_us(total))),
        ("samples".into(), Json::Uint(samples as u64)),
    ])
}

fn measure(samples: usize, query_sets: usize) -> Json {
    let mut presets = Vec::new();
    for preset in PRESETS {
        let name = preset.strip_prefix("mini-").expect("mini preset");
        let net = mini_network(name, NET_SEED).expect("known preset");
        let g = net.graph;
        let mut qg = QueryGenerator::new(&g, QUERY_SEED);
        let queries: Vec<_> = (0..query_sets)
            .map(|_| {
                qg.sample(3, DegreeRank::top(0.8), 2)
                    .expect("mini preset yields queries")
            })
            .collect();
        let engine = CommunityEngine::build(g);
        let mut algos = Vec::new();
        for (label, algo) in ALGOS {
            algos.push((
                label.to_string(),
                measure_algo(&engine, &queries, algo, samples),
            ));
        }
        presets.push((preset.to_string(), Json::Object(algos)));
    }
    Json::Object(presets)
}

fn document(before: Json, after: Json, samples: usize) -> Json {
    Json::Object(vec![
        ("schema".into(), Json::Str("ctc-bench-5".into())),
        ("unit".into(), Json::Str("microseconds_median".into())),
        ("samples".into(), Json::Uint(samples as u64)),
        ("before".into(), before),
        ("after".into(), after),
    ])
}

fn phase_of<'a>(
    doc: &'a Json,
    section: &str,
    preset: &str,
    algo: &str,
) -> Result<&'a Json, String> {
    doc.get(section)
        .and_then(|s| s.get(preset))
        .and_then(|p| p.get(algo))
        .ok_or_else(|| format!("missing {section}.{preset}.{algo}"))
}

/// Validates the committed document and the recorded improvement.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parsing {path}: {e:?}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some("ctc-bench-5") {
        return Err("schema field must be \"ctc-bench-5\"".into());
    }
    for section in ["before", "after"] {
        for preset in PRESETS {
            for (algo, _) in ALGOS {
                let entry = phase_of(&doc, section, preset, algo)?;
                for field in ["locate_us", "peel_us", "total_us"] {
                    entry
                        .get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("{section}.{preset}.{algo}.{field} missing"))?;
                }
            }
        }
    }
    // The acceptance bar this PR records: ≥ 2× median peel reduction on the
    // mini-facebook BulkDelete and LCTC benches.
    for algo in ["bd", "lctc"] {
        let before = phase_of(&doc, "before", "mini-facebook", algo)?
            .get("peel_us")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let after = phase_of(&doc, "after", "mini-facebook", algo)?
            .get("peel_us")
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX);
        if after == 0 || before == 0 {
            continue; // sub-microsecond medians: nothing meaningful to compare
        }
        if after.saturating_mul(2) > before {
            return Err(format!(
                "mini-facebook/{algo}: recorded peel median {after}µs is not ≥2× \
                 better than the {before}µs baseline"
            ));
        }
    }
    // Smoke the recorder itself so the harness cannot silently rot.
    let quick = measure(1, 1);
    for preset in PRESETS {
        for (algo, _) in ALGOS {
            quick
                .get(preset)
                .and_then(|p| p.get(algo))
                .ok_or_else(|| format!("quick measurement lost {preset}/{algo}"))?;
        }
    }
    println!("bench_record --check: {path} ok (schema, ≥2× peel bar, harness smoke)");
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(path) = flag("--check") {
        return check(&path);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let samples: usize = match flag("--samples") {
        Some(raw) => raw.parse().map_err(|_| format!("bad --samples {raw:?}"))?,
        None if quick => 3,
        None => 15,
    };
    let query_sets = if quick { 1 } else { QUERY_SETS };
    let measured = measure(samples, query_sets);
    match flag("--out") {
        None => {
            println!("{}", document(measured.clone(), measured, samples).encode());
        }
        Some(path) => {
            let before = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|doc| doc.get("before").cloned())
                .unwrap_or_else(|| measured.clone());
            let doc = document(before, measured, samples);
            std::fs::write(&path, format!("{}\n", doc.encode()))
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_record: {msg}");
            std::process::ExitCode::FAILURE
        }
    }
}
