//! Standalone zipfian load generator for the evented server.
//!
//! Self-hosts a two-tenant `CtcServer` (mini-facebook + mini-dblp) and
//! drives it through increasing concurrency levels, printing the p50/p99
//! latency trajectory — the interactive face of the `BENCH_8.json`
//! recorder (`bench_record --out8`).
//!
//! ```text
//! load_gen [--levels 1,4,16,64] [--requests N] [--zipf S]
//!          [--pool N] [--seed N] [--json]
//! ```

use ctc_bench::serveload::{encode_levels, run, LoadSpec};
use ctc_server::Json;

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let mut spec = LoadSpec::default();
    if let Some(raw) = flag("--levels") {
        match raw
            .split(',')
            .map(str::parse)
            .collect::<Result<Vec<usize>, _>>()
        {
            Ok(levels) if !levels.is_empty() => spec.levels = levels,
            _ => {
                eprintln!("load_gen: bad --levels {raw:?} (want e.g. 1,4,16,64)");
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    for (name, slot) in [
        ("--requests", &mut spec.requests_per_level),
        ("--pool", &mut spec.pool_size),
    ] {
        if let Some(raw) = flag(name) {
            match raw.parse() {
                Ok(v) if v > 0 => *slot = v,
                _ => {
                    eprintln!("load_gen: bad {name} {raw:?}");
                    return std::process::ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(raw) = flag("--zipf") {
        match raw.parse() {
            Ok(s) => spec.zipf_s = s,
            Err(_) => {
                eprintln!("load_gen: bad --zipf {raw:?}");
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    if let Some(raw) = flag("--seed") {
        match raw.parse() {
            Ok(s) => spec.seed = s,
            Err(_) => {
                eprintln!("load_gen: bad --seed {raw:?}");
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    let results = run(&spec);
    if args.iter().any(|a| a == "--json") {
        let doc = Json::Object(vec![
            ("zipf_s".into(), Json::Float(spec.zipf_s)),
            ("pool_size".into(), Json::Uint(spec.pool_size as u64)),
            (
                "requests_per_level".into(),
                Json::Uint(spec.requests_per_level as u64),
            ),
            ("levels".into(), encode_levels(&results)),
        ]);
        println!("{}", doc.encode());
    } else {
        println!(
            "load_gen: zipf(s={}) over {} queries/tenant, {} requests/level",
            spec.zipf_s, spec.pool_size, spec.requests_per_level
        );
        println!(
            "{:>12} {:>8} {:>9} {:>9} {:>10} {:>10}",
            "concurrency", "ok", "shed_429", "shed_503", "p50_us", "p99_us"
        );
        for r in &results {
            println!(
                "{:>12} {:>8} {:>9} {:>9} {:>10} {:>10}",
                r.concurrency, r.ok, r.shed_429, r.shed_503, r.p50_us, r.p99_us
            );
        }
    }
    std::process::ExitCode::SUCCESS
}
