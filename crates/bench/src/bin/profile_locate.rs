//! Ad-hoc locate-phase profiler (not committed to CI): breaks LCTC locate
//! into steps and times find_g0 on the mini presets.

use ctc_core::{steiner_tree, CtcConfig};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_truss::{find_g0, TrussIndex};
use std::time::Instant;

fn main() {
    for preset in ["facebook", "dblp"] {
        let net = mini_network(preset, 7).expect("preset");
        let g = net.graph;
        println!(
            "== {preset}: n={} m={} maxdeg={}",
            g.num_vertices(),
            g.num_edges(),
            g.max_degree()
        );
        let idx = TrussIndex::build(&g);
        let mut qg = QueryGenerator::new(&g, 5);
        let queries: Vec<_> = (0..3)
            .map(|_| qg.sample(3, DegreeRank::top(0.8), 2).expect("queries"))
            .collect();
        let cfg = CtcConfig::default();

        // find_g0 (Basic/BD/Truss locate core)
        let mut best = u128::MAX;
        for _ in 0..20 {
            let t = Instant::now();
            for q in &queries {
                let g0 = find_g0(&g, &idx, q).unwrap();
                std::hint::black_box(&g0);
            }
            best = best.min(t.elapsed().as_micros());
        }
        println!("find_g0 x3: {best}us");

        // Subgraph materialization
        let mut best = u128::MAX;
        for _ in 0..20 {
            let t = Instant::now();
            for q in &queries {
                let g0 = find_g0(&g, &idx, q).unwrap();
                let sub = ctc_graph::edge_subgraph(&g, &g0.edges);
                std::hint::black_box(&sub);
            }
            best = best.min(t.elapsed().as_micros());
        }
        println!("find_g0+edge_subgraph x3: {best}us");

        // LCTC steps
        let mut t_st = u128::MAX;
        let mut t_gt = u128::MAX;
        let mut t_idx = u128::MAX;
        let mut t_g0 = u128::MAX;
        let mut t_mat = u128::MAX;
        for _ in 0..20 {
            let (mut a, mut b, mut c, mut d, mut e) = (0, 0, 0, 0, 0);
            for q in &queries {
                let t = Instant::now();
                let tree = steiner_tree(&g, &idx, q, cfg.gamma, cfg.steiner_mode).unwrap();
                a += t.elapsed().as_micros();
                let t = Instant::now();
                let gt = ctc_core::local::expand_tree(&g, &idx, &tree, cfg.eta);
                b += t.elapsed().as_micros();
                let q_gt: Vec<_> = gt.locals(q).unwrap();
                let t = Instant::now();
                let idx_t = TrussIndex::build(&gt.graph);
                c += t.elapsed().as_micros();
                let t = Instant::now();
                let ht = find_g0(&gt.graph, &idx_t, &q_gt).unwrap();
                d += t.elapsed().as_micros();
                let t = Instant::now();
                let mut ht_pairs: Vec<_> = ht
                    .edges
                    .iter()
                    .map(|&ei| {
                        let (u, v) = gt.graph.edge_endpoints(ei);
                        let (pu, pv) = (gt.parent(u), gt.parent(v));
                        if pu < pv {
                            (pu, pv)
                        } else {
                            (pv, pu)
                        }
                    })
                    .collect();
                ht_pairs.sort_unstable();
                let ht_sub = ctc_graph::subgraph_from_pairs(&ht_pairs);
                e += t.elapsed().as_micros();
                std::hint::black_box(&ht_sub);
                println!(
                    "  gt: n={} m={}  ht: m={}",
                    gt.num_vertices(),
                    gt.num_edges(),
                    ht.edges.len()
                );
            }
            t_st = t_st.min(a);
            t_gt = t_gt.min(b);
            t_idx = t_idx.min(c);
            t_g0 = t_g0.min(d);
            t_mat = t_mat.min(e);
        }
        println!("lctc steiner x3:      {t_st}us");
        println!("lctc expand x3:       {t_gt}us");
        println!("lctc index-build x3:  {t_idx}us");
        println!("lctc find_g0 x3:      {t_g0}us");
        println!("lctc materialize x3:  {t_mat}us");

        // Index-build sub-steps on the biggest Gt of the workload.
        let tree = steiner_tree(&g, &idx, &queries[0], cfg.gamma, cfg.steiner_mode).unwrap();
        let gt = ctc_core::local::expand_tree(&g, &idx, &tree, cfg.eta);
        let gg = &gt.graph;
        let mut t_sup = u128::MAX;
        let mut t_dec = u128::MAX;
        let mut t_idx2 = u128::MAX;
        for _ in 0..30 {
            let t = Instant::now();
            let sup = ctc_graph::edge_supports(gg);
            std::hint::black_box(&sup);
            t_sup = t_sup.min(t.elapsed().as_micros());
            let t = Instant::now();
            let dec = ctc_truss::truss_decomposition(gg);
            t_dec = t_dec.min(t.elapsed().as_micros());
            let t = Instant::now();
            let ix = TrussIndex::from_decomposition(gg, &dec);
            std::hint::black_box(&ix);
            t_idx2 = t_idx2.min(t.elapsed().as_micros());
        }
        println!("  gt0 edge_supports:      {t_sup}us");
        println!("  gt0 decomposition:      {t_dec}us");
        println!("  gt0 from_decomposition: {t_idx2}us");
    }
}
