//! Regenerates Figures 5 (dblp) / 6 (facebook): varying query size |Q|.
//! Usage: exp_fig5_6 [dblp|facebook]
use ctc_bench::experiments::exp1::{run, Knob};
fn main() {
    let net = std::env::args().nth(1).unwrap_or_else(|| "facebook".into());
    run(&net, Knob::QuerySize);
}
