//! Regenerates the two design-choice ablations (DESIGN.md §4).
fn main() {
    ctc_bench::experiments::ablation::steiner_modes();
    ctc_bench::experiments::ablation::delete_policies();
}
