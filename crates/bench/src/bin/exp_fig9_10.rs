//! Regenerates Figures 9 (dblp) / 10 (facebook): varying inter-distance l.
//! Usage: exp_fig9_10 [dblp|facebook]
use ctc_bench::experiments::exp1::{run, Knob};
fn main() {
    let net = std::env::args().nth(1).unwrap_or_else(|| "facebook".into());
    run(&net, Knob::InterDistance);
}
