//! Regenerates Figure 13: diameter & trussness approximation.
fn main() {
    ctc_bench::experiments::exp456::fig13();
}
