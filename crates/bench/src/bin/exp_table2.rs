//! Regenerates Table 2 (network statistics).
fn main() {
    ctc_bench::experiments::tables::table2();
}
