//! Regenerates Table 3 (index size and construction time).
fn main() {
    ctc_bench::experiments::tables::table3();
}
