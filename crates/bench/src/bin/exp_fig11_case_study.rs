//! Regenerates Figure 11: the collaboration-network case study.
fn main() {
    ctc_bench::experiments::exp2::run();
}
