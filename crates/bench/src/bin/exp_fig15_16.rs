//! Regenerates Figures 15/16: LCTC η and γ sweeps.
fn main() {
    ctc_bench::experiments::exp456::fig15_16();
}
