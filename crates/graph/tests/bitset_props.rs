//! Property tests pinning the blocked-bitset intersection kernels to the
//! sorted-merge oracle: for any graph and any density threshold — all-merge
//! (`u32::MAX`), all-dense-eligible (`1`), and the production default — the
//! hybrid dispatch must produce byte-identical supports, counts, common
//! neighborhoods, and triangle streams, at 1/2/4 threads.

use ctc_gen::random::{barabasi_albert, erdos_renyi_nm};
use ctc_graph::{
    common_neighbors, common_neighbors_into, edge_supports, edge_supports_adj, edge_supports_par,
    triangle_count, BitsetAdjacency, CsrGraph, Parallelism, VertexId, DEFAULT_DENSE_DEGREE,
};
use proptest::prelude::*;

/// Thresholds on both sides of the dense cutoff: every row sparse, the
/// production hybrid, and every row dense-eligible.
const THRESHOLDS: [u32; 3] = [u32::MAX, DEFAULT_DENSE_DEGREE, 1];

/// Textbook sorted-merge intersection — the oracle the kernels must match.
fn merge_common(g: &CsrGraph, u: VertexId, v: VertexId) -> Vec<u32> {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn check_kernels_match_oracle(g: &CsrGraph) -> Result<(), TestCaseError> {
    let serial = edge_supports(g);
    let mut sup_sum = 0u64;
    for threshold in THRESHOLDS {
        let adj = BitsetAdjacency::with_threshold(g, threshold);
        let mut sup = Vec::new();
        edge_supports_adj(g, &adj, &mut sup);
        prop_assert_eq!(
            &sup,
            &serial,
            "supports diverged at threshold {}",
            threshold
        );
        sup_sum = sup.iter().map(|&s| s as u64).sum();
        // Per-pair: counts and emitted common-neighbor streams match the
        // merge oracle for adjacent pairs (the only pairs the kernels are
        // specified for), in ascending order with correct edge ids.
        for u in g.vertices() {
            for &nb in g.neighbors(u) {
                let v = VertexId(nb);
                if v <= u {
                    continue;
                }
                let oracle = merge_common(g, u, v);
                prop_assert_eq!(
                    adj.intersection_count(g, u, v) as usize,
                    oracle.len(),
                    "count diverged at threshold {} for ({:?},{:?})",
                    threshold,
                    u,
                    v
                );
                let mut seen = Vec::new();
                adj.for_each_common(g, u, v, 0, |w, euw, evw| seen.push((w, euw, evw)));
                let ws: Vec<u32> = seen.iter().map(|&(w, _, _)| w.0).collect();
                prop_assert_eq!(ws, oracle, "stream diverged at threshold {}", threshold);
                for &(w, euw, evw) in &seen {
                    prop_assert_eq!(g.edge_between(u, w), Some(euw), "wrong u-w edge id");
                    prop_assert_eq!(g.edge_between(v, w), Some(evw), "wrong v-w edge id");
                }
            }
        }
    }
    // Triangle identity: Σ sup(e) = 3 · #triangles, and the routed
    // triangle_count agrees.
    prop_assert_eq!(sup_sum, 3 * triangle_count(g), "sum of supports != 3T");
    // Thread counts cannot change the answer.
    for t in [1usize, 2, 4] {
        prop_assert_eq!(
            edge_supports_par(g, Parallelism::threads(t)),
            serial.clone(),
            "parallel supports diverged at {} threads",
            t
        );
    }
    // Pooled common_neighbors matches the allocating variant.
    let mut buf = Vec::new();
    for u in g.vertices().take(8) {
        for &nb in g.neighbors(u) {
            let v = VertexId(nb);
            common_neighbors_into(g, u, v, &mut buf);
            prop_assert_eq!(&buf, &common_neighbors(g, u, v));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn kernels_match_merge_oracle_on_er_graphs(
        n in 4usize..60,
        edges_per_vertex in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        check_kernels_match_oracle(&g)?;
    }

    #[test]
    fn kernels_match_merge_oracle_on_ba_graphs(
        n in 6usize..60,
        attach in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let g = barabasi_albert(n, attach, seed);
        check_kernels_match_oracle(&g)?;
    }
}

#[test]
fn empty_and_tiny_graphs_are_safe() {
    for g in [
        erdos_renyi_nm(0, 0, 1),
        erdos_renyi_nm(1, 0, 1),
        erdos_renyi_nm(2, 1, 1),
    ] {
        check_kernels_match_oracle(&g).expect("kernels agree on degenerate graphs");
    }
}
