//! Property suite for the incremental distance engine: after any sequence
//! of random deletion batches, a repaired [`DistanceField`] must be
//! indistinguishable from a from-scratch BFS over the surviving graph —
//! per vertex, and in the max/sum multi-source profiles the peeling loop
//! derives from it.

use ctc_gen::random::{barabasi_albert, erdos_renyi_nm};
use ctc_graph::{bfs_distances, CsrGraph, DistanceField, DynGraph, EdgeId, VertexId, INF};
use proptest::prelude::*;

/// Deterministic cheap PRNG for schedule generation (the graph generators
/// already consume the proptest entropy via `seed`).
fn mix(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn assert_field_matches_oracle(field: &DistanceField, live: &DynGraph<'_>, src: VertexId) {
    if field.is_dead() {
        for v in 0..live.base().num_vertices() {
            assert_eq!(field.dist(VertexId::from(v)), INF, "dead field leaks dist");
        }
        return;
    }
    let fresh = bfs_distances(live, src);
    for v in 0..live.base().num_vertices() {
        let v = VertexId::from(v);
        let expected = if live.is_vertex_alive(v) {
            fresh[v.index()]
        } else {
            INF
        };
        assert_eq!(field.dist(v), expected, "src {src}, vertex {v}");
    }
}

/// Runs a random deletion schedule over `g`, repairing one field per
/// source and checking every field (and the max/sum profile) against the
/// full-recompute oracle after every batch.
fn exercise(g: &CsrGraph, mut rng_state: u64, batches: usize) {
    let n = g.num_vertices();
    if n < 3 {
        return;
    }
    let mut live = DynGraph::new(g);
    let num_sources = 1 + (mix(&mut rng_state) as usize % 3);
    let sources: Vec<VertexId> = (0..num_sources)
        .map(|_| VertexId((mix(&mut rng_state) % n as u64) as u32))
        .collect();
    let mut fields: Vec<DistanceField> = sources
        .iter()
        .map(|&s| {
            let mut f = DistanceField::new();
            f.init(&live, s);
            f
        })
        .collect();

    for _ in 0..batches {
        if live.num_alive_vertices() <= 1 {
            break;
        }
        // A batch: 1–3 random alive vertices, plus sometimes a surviving
        // alive edge (the cascade shape: edges can die without vertices).
        let alive = live.alive_vertex_list().to_vec();
        let batch_len = 1 + (mix(&mut rng_state) as usize % 3).min(alive.len() - 1);
        let mut victims: Vec<VertexId> = Vec::new();
        for _ in 0..batch_len {
            let v = alive[(mix(&mut rng_state) as usize) % alive.len()];
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        let mut dead_edges: Vec<EdgeId> = Vec::new();
        for &v in &victims {
            dead_edges.extend(live.remove_vertex(v));
        }
        if mix(&mut rng_state).is_multiple_of(2) {
            let extra = live.alive_edges().next().map(|(e, _, _)| e);
            if let Some(e) = extra {
                live.remove_edge(e);
                dead_edges.push(e);
            }
        }
        for f in &mut fields {
            f.repair(&live, &victims, &dead_edges);
        }
        for (f, &s) in fields.iter().zip(&sources) {
            assert_field_matches_oracle(f, &live, s);
        }
        // The multi-source max/sum profile the peel loop maintains must
        // match a naive recompute from all sources.
        if fields.iter().all(|f| !f.is_dead()) {
            for v in 0..n {
                let v = VertexId::from(v);
                let max: u32 = fields.iter().map(|f| f.dist(v)).max().unwrap();
                let sum: u64 = fields
                    .iter()
                    .fold(0u64, |acc, f| acc.saturating_add(f.dist(v) as u64));
                let naive: Vec<u32> = sources
                    .iter()
                    .map(|&s| {
                        let d = bfs_distances(&live, s);
                        if live.is_vertex_alive(v) {
                            d[v.index()]
                        } else {
                            INF
                        }
                    })
                    .collect();
                assert_eq!(max, naive.iter().copied().max().unwrap(), "max at {v}");
                assert_eq!(
                    sum,
                    naive
                        .iter()
                        .fold(0u64, |acc, &d| acc.saturating_add(d as u64)),
                    "sum at {v}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn repair_matches_recompute_on_er(
        n in 4usize..60,
        epv in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let g = erdos_renyi_nm(n, n * epv, seed);
        exercise(&g, seed ^ 0x9e3779b97f4a7c15, 6);
    }

    #[test]
    fn repair_matches_recompute_on_ba(
        n in 5usize..60,
        m0 in 2usize..4,
        seed in 0u64..10_000,
    ) {
        let g = barabasi_albert(n, m0, seed);
        exercise(&g, seed.wrapping_mul(0x2545f4914f6cdd1d), 6);
    }
}
