//! Property tests for the CSR substrate: round-trip from arbitrary edge
//! lists (sorted, deduplicated, symmetric adjacency) and triangle counting
//! against brute force on small random graphs from `ctc_gen::random`.

use ctc_gen::random::{barabasi_albert, erdos_renyi_nm, erdos_renyi_np, watts_strogatz};
use ctc_graph::{graph_from_edges, triangle_count, CsrGraph, VertexId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The model a CSR built from `edges` must match: self-loops dropped and
/// duplicates merged, with each undirected edge stored once per direction.
fn normalized_edge_set(edges: &[(u32, u32)]) -> BTreeSet<(u32, u32)> {
    edges
        .iter()
        .filter(|(u, v)| u != v)
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .collect()
}

/// O(n^3) reference triangle counter.
fn brute_force_triangles(g: &CsrGraph) -> u64 {
    let n = g.num_vertices() as u32;
    let mut count = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(VertexId(a), VertexId(b)) {
                continue;
            }
            for c in (b + 1)..n {
                if g.has_edge(VertexId(a), VertexId(c)) && g.has_edge(VertexId(b), VertexId(c)) {
                    count += 1;
                }
            }
        }
    }
    count
}

fn check_csr_invariants(g: &CsrGraph) -> Result<(), TestCaseError> {
    for v in g.vertices() {
        let row = g.neighbors(v);
        // Rows are strictly sorted (sorted + deduplicated, no self-loops).
        prop_assert!(
            row.windows(2).all(|w| w[0] < w[1]),
            "row of {v:?} not strictly sorted"
        );
        prop_assert!(!row.contains(&v.0), "self-loop survived at {v:?}");
        // Symmetry: u in N(v) <=> v in N(u), and both directions agree on
        // the edge id.
        for &u in row {
            let u = VertexId(u);
            prop_assert!(
                g.neighbors(u).contains(&v.0),
                "asymmetric edge ({v:?},{u:?})"
            );
            prop_assert_eq!(g.edge_between(v, u), g.edge_between(u, v));
        }
    }
    // Degrees sum to 2m.
    let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
    prop_assert_eq!(degree_sum, 2 * g.num_edges());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn csr_round_trips_arbitrary_edge_lists(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..80),
    ) {
        let g = graph_from_edges(&edges);
        let model = normalized_edge_set(&edges);
        prop_assert_eq!(g.num_edges(), model.len());
        let stored: BTreeSet<(u32, u32)> = g
            .edges()
            .map(|(_, u, v)| (u.0.min(v.0), u.0.max(v.0)))
            .collect();
        prop_assert_eq!(stored, model);
        check_csr_invariants(&g)?;
    }

    #[test]
    fn triangle_count_matches_brute_force_on_arbitrary_graphs(
        edges in proptest::collection::vec((0u32..12, 0u32..12), 1..50),
    ) {
        let g = graph_from_edges(&edges);
        prop_assert_eq!(triangle_count(&g), brute_force_triangles(&g));
    }

    #[test]
    fn random_generators_produce_valid_csr(seed in 0u64..1000) {
        for g in [
            erdos_renyi_nm(24, 60, seed),
            erdos_renyi_np(24, 0.2, seed),
            barabasi_albert(24, 3, seed),
            watts_strogatz(24, 4, 0.2, seed),
        ] {
            check_csr_invariants(&g)?;
            prop_assert_eq!(triangle_count(&g), brute_force_triangles(&g));
        }
    }

    #[test]
    fn support_sum_is_three_times_triangles(seed in 0u64..1000) {
        // Each triangle contributes support 1 to each of its three edges.
        let g = erdos_renyi_np(20, 0.25, seed);
        let total: u64 = ctc_graph::edge_supports(&g).iter().map(|&s| s as u64).sum();
        prop_assert_eq!(total, 3 * triangle_count(&g));
    }
}
