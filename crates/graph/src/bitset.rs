//! Blocked u64-bitset adjacency: the locate-phase intersection kernel.
//!
//! The locate phase (Algorithm 2 and LCTC's per-query decomposition) is
//! bound by sorted-row merges: every edge pays `O(d(u) + d(v))` compares to
//! find its triangles. [`BitsetAdjacency`] trades memory for word-parallel
//! intersection: vertices above a degree threshold get a *span-compressed*
//! bitset row — `u64` words covering only `[min_nbr/64 ..= max_nbr/64]` —
//! and two dense rows intersect with `AND` + `popcount` over the overlap of
//! their spans, which the compiler auto-vectorizes with no SIMD crates.
//!
//! Each dense row also carries a *rank directory* (exclusive prefix
//! popcounts per word), so the position of a neighbor inside the CSR row —
//! and therefore its **edge id** — is recovered from its bit in O(1). That
//! is what lets triangle enumeration emit `(w, e_uw, e_vw)` triples without
//! hashtable or binary-search lookups.
//!
//! The kernel is a *hybrid*: rows below the threshold (or whose neighbor
//! span is too wide to pack profitably) stay sparse, and intersections
//! dispatch per edge — dense∧dense AND, dense∧sparse bit-probes, and the
//! existing early-exit merge for sparse∧sparse. All three paths enumerate
//! common neighbors in ascending id order, so results are byte-identical
//! to the merge oracle by construction.

use crate::csr::CsrGraph;
use crate::ids::{EdgeId, VertexId};

/// Default degree threshold: rows with fewer neighbors stay sparse.
///
/// Low on purpose — a merge over two degree-8 rows already costs ~16
/// branchy compares, while the packed spans of community-scale graphs are
/// a handful of words. The hybrid guard on span width (below) is what
/// keeps pathological rows out, not a high degree bar.
pub const DEFAULT_DENSE_DEGREE: u32 = 8;

/// A dense row is only packed when its word span is at most this many
/// words per neighbor — beyond that the bitset walks more memory than the
/// merge it replaces (and the slab would bloat: the cap bounds the whole
/// structure by `8·m` words).
const SPAN_WORDS_PER_DEGREE: u32 = 4;

/// Slab coordinates of one vertex's packed row; `num_words == 0` marks a
/// sparse (merge-path) row.
#[derive(Clone, Copy, Debug, Default)]
struct Row {
    words_start: u32,
    first_word: u32,
    num_words: u32,
}

/// Detached allocations of a [`BitsetAdjacency`], for pooling: build with
/// [`BitsetAdjacency::build_in`], recover via
/// [`BitsetAdjacency::into_buffers`], and the warm path stops allocating
/// once the buffers have grown to the workload.
#[derive(Clone, Debug, Default)]
pub struct BitsetBuffers {
    words: Vec<u64>,
    rank: Vec<u32>,
    rows: Vec<Row>,
}

/// Hybrid bitset/merge adjacency sidecar over a [`CsrGraph`].
///
/// Holds no reference to the graph it was built from; every query takes
/// `&CsrGraph` so the sidecar can live in pools and engine-level caches
/// without self-referential lifetimes. Passing a *different* graph than
/// the one it was built from is a logic error (debug-asserted).
#[derive(Clone, Debug)]
pub struct BitsetAdjacency {
    threshold: u32,
    num_vertices: usize,
    words: Vec<u64>,
    rank: Vec<u32>,
    rows: Vec<Row>,
}

impl BitsetAdjacency {
    /// Builds the sidecar with the default degree threshold.
    pub fn build(g: &CsrGraph) -> Self {
        Self::with_threshold(g, DEFAULT_DENSE_DEGREE)
    }

    /// Builds with an explicit degree threshold (`0`/`1` packs every
    /// non-isolated vertex whose span qualifies; `u32::MAX` packs nothing,
    /// forcing the pure merge path — the oracle configuration).
    pub fn with_threshold(g: &CsrGraph, threshold: u32) -> Self {
        Self::build_in(g, threshold, BitsetBuffers::default())
    }

    /// Builds into recycled buffers (see [`BitsetBuffers`]).
    pub fn build_in(g: &CsrGraph, threshold: u32, bufs: BitsetBuffers) -> Self {
        let BitsetBuffers {
            mut words,
            mut rank,
            mut rows,
        } = bufs;
        let n = g.num_vertices();
        rows.clear();
        rows.resize(n, Row::default());
        words.clear();
        rank.clear();
        let threshold = threshold.max(1);
        for (v, row) in rows.iter_mut().enumerate() {
            let nbrs = g.neighbors(VertexId(v as u32));
            let deg = nbrs.len() as u32;
            if deg < threshold {
                continue;
            }
            let first_word = nbrs[0] >> 6;
            let span = (nbrs[nbrs.len() - 1] >> 6) - first_word + 1;
            if span > deg.saturating_mul(SPAN_WORDS_PER_DEGREE)
                || words.len() + span as usize > u32::MAX as usize
            {
                continue;
            }
            let start = words.len() as u32;
            *row = Row {
                words_start: start,
                first_word,
                num_words: span,
            };
            words.resize(words.len() + span as usize, 0);
            let w = &mut words[start as usize..];
            for &nb in nbrs {
                w[((nb >> 6) - first_word) as usize] |= 1u64 << (nb & 63);
            }
            let mut acc = 0u32;
            rank.reserve(span as usize);
            for &word in w.iter().take(span as usize) {
                rank.push(acc);
                acc += word.count_ones();
            }
        }
        BitsetAdjacency {
            threshold,
            num_vertices: n,
            words,
            rank,
            rows,
        }
    }

    /// Tears the sidecar down to its raw buffers for pooling.
    pub fn into_buffers(self) -> BitsetBuffers {
        BitsetBuffers {
            words: self.words,
            rank: self.rank,
            rows: self.rows,
        }
    }

    /// The degree threshold the sidecar was built with.
    #[inline]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// `true` if `v` has a packed bitset row.
    #[inline]
    pub fn is_dense(&self, v: VertexId) -> bool {
        self.rows[v.index()].num_words != 0
    }

    /// Number of vertices with a packed row (diagnostic).
    pub fn num_dense(&self) -> usize {
        self.rows.iter().filter(|r| r.num_words != 0).count()
    }

    #[inline(always)]
    fn row_words(&self, r: Row) -> &[u64] {
        &self.words[r.words_start as usize..(r.words_start + r.num_words) as usize]
    }

    /// `true` if dense row `r` contains neighbor `w`.
    #[inline(always)]
    fn row_contains(&self, r: Row, w: u32) -> bool {
        let wi = w >> 6;
        if wi < r.first_word || wi >= r.first_word + r.num_words {
            return false;
        }
        let word = self.words[(r.words_start + wi - r.first_word) as usize];
        word >> (w & 63) & 1 != 0
    }

    /// Position of neighbor `w` inside the CSR row backing dense row `r`
    /// (caller guarantees membership): rank-directory word prefix plus the
    /// popcount of the bits below `w` in its word.
    #[inline(always)]
    fn row_position(&self, r: Row, w: u32) -> usize {
        let slot = (r.words_start + (w >> 6) - r.first_word) as usize;
        let below = self.words[slot] & ((1u64 << (w & 63)) - 1);
        (self.rank[slot] + below.count_ones()) as usize
    }

    /// Number of common neighbors of `u` and `v` (the support of the edge
    /// `{u, v}` if present). Byte-identical to the sorted-row merge on
    /// every input; only the dispatch differs.
    pub fn intersection_count(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> u32 {
        debug_assert_eq!(
            self.num_vertices,
            g.num_vertices(),
            "sidecar/graph mismatch"
        );
        let (ru, rv) = (self.rows[u.index()], self.rows[v.index()]);
        match (ru.num_words != 0, rv.num_words != 0) {
            (true, true) => {
                let lo = ru.first_word.max(rv.first_word);
                let hi = (ru.first_word + ru.num_words).min(rv.first_word + rv.num_words);
                if lo >= hi {
                    return 0;
                }
                let a = &self.row_words(ru)[(lo - ru.first_word) as usize..];
                let b = &self.row_words(rv)[(lo - rv.first_word) as usize..];
                let len = (hi - lo) as usize;
                let mut c = 0u32;
                for i in 0..len {
                    c += (a[i] & b[i]).count_ones();
                }
                c
            }
            (true, false) => self.probe_count(ru, g.neighbors(v)),
            (false, true) => self.probe_count(rv, g.neighbors(u)),
            (false, false) => merge_count(g.neighbors(u), g.neighbors(v)),
        }
    }

    #[inline]
    fn probe_count(&self, dense: Row, sparse: &[u32]) -> u32 {
        let mut c = 0u32;
        for &w in sparse {
            c += self.row_contains(dense, w) as u32;
        }
        c
    }

    /// Calls `f(w, e_uw, e_vw)` for every common neighbor `w ≥ from` of `u`
    /// and `v`, in ascending `w` order — the same order (and the same edge
    /// ids) the merge oracle produces.
    pub fn for_each_common<F: FnMut(VertexId, EdgeId, EdgeId)>(
        &self,
        g: &CsrGraph,
        u: VertexId,
        v: VertexId,
        from: u32,
        mut f: F,
    ) {
        debug_assert_eq!(
            self.num_vertices,
            g.num_vertices(),
            "sidecar/graph mismatch"
        );
        let (ru, rv) = (self.rows[u.index()], self.rows[v.index()]);
        match (ru.num_words != 0, rv.num_words != 0) {
            (true, true) => {
                let lo = ru.first_word.max(rv.first_word).max(from >> 6);
                let hi = (ru.first_word + ru.num_words).min(rv.first_word + rv.num_words);
                if lo >= hi {
                    return;
                }
                let (eu, ev) = (g.neighbor_edge_ids(u), g.neighbor_edge_ids(v));
                for wi in lo..hi {
                    let mut bits = self.words[(ru.words_start + wi - ru.first_word) as usize]
                        & self.words[(rv.words_start + wi - rv.first_word) as usize];
                    if wi == from >> 6 {
                        bits &= !0u64 << (from & 63);
                    }
                    while bits != 0 {
                        let w = (wi << 6) + bits.trailing_zeros();
                        bits &= bits - 1;
                        let e_uw = EdgeId(eu[self.row_position(ru, w)]);
                        let e_vw = EdgeId(ev[self.row_position(rv, w)]);
                        f(VertexId(w), e_uw, e_vw);
                    }
                }
            }
            (true, false) => self.probe_common(g, ru, u, v, from, &mut f),
            (false, true) => self.probe_common(g, rv, v, u, from, |w, ed, es| f(w, es, ed)),
            (false, false) => {
                let (nu, eu) = (g.neighbors(u), g.neighbor_edge_ids(u));
                let (nv, ev) = (g.neighbors(v), g.neighbor_edge_ids(v));
                let mut i = nu.partition_point(|&x| x < from);
                let mut j = nv.partition_point(|&x| x < from);
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            f(VertexId(nu[i]), EdgeId(eu[i]), EdgeId(ev[j]));
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
    }

    /// Dense∧sparse arm of [`for_each_common`]: walk the sparse CSR row,
    /// probe the dense bitset. `f(w, e_dense_w, e_sparse_w)`.
    #[inline]
    fn probe_common<F: FnMut(VertexId, EdgeId, EdgeId)>(
        &self,
        g: &CsrGraph,
        dense: Row,
        dense_v: VertexId,
        sparse_v: VertexId,
        from: u32,
        mut f: F,
    ) {
        let (ns, es) = (g.neighbors(sparse_v), g.neighbor_edge_ids(sparse_v));
        let ed = g.neighbor_edge_ids(dense_v);
        for i in ns.partition_point(|&x| x < from)..ns.len() {
            let w = ns[i];
            if self.row_contains(dense, w) {
                f(
                    VertexId(w),
                    EdgeId(ed[self.row_position(dense, w)]),
                    EdgeId(es[i]),
                );
            }
        }
    }
}

/// The classic two-pointer merge count — the sparse∧sparse arm and the
/// oracle every bitset path must reproduce.
#[inline]
pub(crate) fn merge_count(a: &[u32], b: &[u32]) -> u32 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn check_against_merge(g: &CsrGraph, threshold: u32) {
        let adj = BitsetAdjacency::with_threshold(g, threshold);
        for (e, u, v) in g.edges() {
            let want = merge_count(g.neighbors(u), g.neighbors(v));
            assert_eq!(
                adj.intersection_count(g, u, v),
                want,
                "edge {e} ({u},{v}) t={threshold}"
            );
            // Listing path: same commons, correct edge ids, ascending.
            let mut got: Vec<(u32, u32, u32)> = Vec::new();
            adj.for_each_common(g, u, v, 0, |w, euw, evw| got.push((w.0, euw.0, evw.0)));
            assert_eq!(got.len(), want as usize);
            assert!(got.windows(2).all(|p| p[0].0 < p[1].0), "not ascending");
            for &(w, euw, evw) in &got {
                assert_eq!(g.edge_between(u, VertexId(w)), Some(EdgeId(euw)));
                assert_eq!(g.edge_between(v, VertexId(w)), Some(EdgeId(evw)));
            }
            // Bounded listing agrees with filtering.
            for from in [0u32, u.0, v.0 + 1, 63, 64, 65] {
                let mut bounded = 0usize;
                adj.for_each_common(g, u, v, from, |w, _, _| {
                    assert!(w.0 >= from);
                    bounded += 1;
                });
                let want_b = got.iter().filter(|t| t.0 >= from).count();
                assert_eq!(bounded, want_b, "from={from}");
            }
        }
    }

    fn dense_fixture() -> CsrGraph {
        // Two overlapping K6s plus far-id chords so spans cross words.
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((0, 100));
        edges.push((1, 100));
        edges.push((0, 101));
        edges.push((1, 101));
        edges.push((100, 101));
        graph_from_edges(&edges)
    }

    #[test]
    fn hybrid_matches_merge_at_every_threshold() {
        let g = dense_fixture();
        for t in [0u32, 1, 2, 4, 8, u32::MAX] {
            check_against_merge(&g, t);
        }
    }

    #[test]
    fn span_guard_leaves_scattered_hubs_sparse() {
        // A hub whose neighbors are spread over a huge id range: span cap
        // must refuse to pack it, and results must still be exact.
        let mut edges = Vec::new();
        for i in 0..16u32 {
            edges.push((0, 1 + i * 1000));
        }
        edges.push((1, 1001));
        edges.push((0, 1)); // triangle 0-1-1001
        let g = graph_from_edges(&edges);
        let adj = BitsetAdjacency::with_threshold(&g, 1);
        assert!(!adj.is_dense(VertexId(0)), "span cap should reject the hub");
        check_against_merge(&g, 1);
    }

    #[test]
    fn word_boundary_neighbors() {
        // Neighbors straddling the 64-bit word boundary.
        let edges: Vec<(u32, u32)> = vec![
            (62, 63),
            (62, 64),
            (63, 64),
            (63, 65),
            (64, 65),
            (62, 128),
            (63, 128),
            (64, 128),
            (65, 128),
        ];
        let g = graph_from_edges(&edges);
        for t in [1u32, u32::MAX] {
            check_against_merge(&g, t);
        }
    }

    #[test]
    fn buffer_pooling_roundtrip() {
        let g = dense_fixture();
        let adj = BitsetAdjacency::with_threshold(&g, 1);
        let dense = adj.num_dense();
        assert!(dense > 0);
        let bufs = adj.into_buffers();
        let again = BitsetAdjacency::build_in(&g, 1, bufs);
        assert_eq!(again.num_dense(), dense);
        check_against_merge(&g, 1);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = graph_from_edges(&[]);
        let adj = BitsetAdjacency::build(&g);
        assert_eq!(adj.num_dense(), 0);
        let g = graph_from_edges(&[(0, 1)]);
        check_against_merge(&g, 1);
    }
}
