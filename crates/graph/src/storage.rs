//! A storage seam for crash-safe persistence: the [`StorageEnv`] trait
//! abstracts every file operation the persistence layer performs, with a
//! real filesystem implementation ([`RealEnv`]) and a deterministic,
//! seed-driven fault injector ([`FaultEnv`]).
//!
//! The point of the seam is that the *protocol* (temp file → fsync →
//! rename → fsync parent directory; append → fsync) can be proven correct
//! under every crash point and fault kind without touching a disk or
//! forking a process. `FaultEnv` models the facts that make naive
//! persistence wrong:
//!
//! * a write is **not durable** until the file is fsynced — on crash, any
//!   prefix of the unsynced writes (including a torn prefix of the last
//!   one) may survive;
//! * a created, renamed, or removed **name** is not durable until the
//!   parent directory is fsynced — on crash the directory reverts to its
//!   last-synced contents while inodes keep their (synced) data;
//! * writes can be short or torn, fsync can fail — or worse, *lie*
//!   ([`Fault::IgnoredSync`]) — and the disk can fill mid-write
//!   ([`Fault::Enospc`]);
//! * after crash point `N`, every operation returns a poisoned error
//!   (simulating `kill -9`), until [`FaultEnv::restart`] materializes one
//!   seed-chosen surviving disk image and clears the poison.
//!
//! [`write_durable`] is the shared temp-file discipline built on the seam;
//! `ctc-truss` snapshot/WAL persistence and the recovery path all go
//! through it.

use crate::error::{GraphError, Result};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The file operations persistence is built from. Implementations must be
/// shareable across threads; paths are treated as opaque names (no
/// directory tree is modeled beyond "the parent directory of a path").
pub trait StorageEnv: Send + Sync + std::fmt::Debug {
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;

    /// Creates or truncates `path` and writes `bytes` (like
    /// `std::fs::write`). No durability is implied: the data needs
    /// [`sync_file`](StorageEnv::sync_file), and a *new* name needs
    /// [`sync_parent_dir`](StorageEnv::sync_parent_dir).
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()>;

    /// Overwrites in place starting `suffix_len` bytes before the current
    /// end of file (the file may grow). This is the append idiom of a log
    /// whose last `suffix_len` bytes are a trailer to be replaced.
    fn write_at_end(&self, path: &Path, suffix_len: u64, bytes: &[u8]) -> Result<()>;

    /// Truncates the file at `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> Result<()>;

    /// Fsyncs the file's data and metadata.
    fn sync_file(&self, path: &Path) -> Result<()>;

    /// Fsyncs the directory containing `path`, making name creations,
    /// renames and removals under it durable.
    fn sync_parent_dir(&self, path: &Path) -> Result<()>;

    /// Atomically renames `from` to `to` (replacing `to` if present). Not
    /// durable until the parent directory is synced.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;

    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> Result<()>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The sibling temp-file name the durable-write discipline uses:
/// `<file name>.tmp` in the same directory (so `rename` stays within one
/// filesystem and one parent directory fsync covers it).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` with full crash-safety discipline: write a
/// sibling temp file, fsync it, rename over `path`, fsync the parent
/// directory. After a crash at any point, `path` holds either its complete
/// old content or the complete new content — never a torn mixture.
pub fn write_durable(env: &dyn StorageEnv, path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = tmp_path(path);
    env.write(&tmp, bytes)?;
    env.sync_file(&tmp)?;
    env.rename(&tmp, path)?;
    env.sync_parent_dir(path)?;
    Ok(())
}

/// The real filesystem behind the [`StorageEnv`] seam.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealEnv;

/// A shared handle to the real filesystem environment.
pub fn real_env() -> Arc<dyn StorageEnv> {
    Arc::new(RealEnv)
}

impl StorageEnv for RealEnv {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        Ok(std::fs::read(path)?)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        Ok(std::fs::write(path, bytes)?)
    }

    fn write_at_end(&self, path: &Path, suffix_len: u64, bytes: &[u8]) -> Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        let len = file.metadata()?.len();
        file.seek(SeekFrom::Start(len.saturating_sub(suffix_len)))?;
        file.write_all(bytes)?;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.sync_all()?;
        Ok(())
    }

    #[cfg(unix)]
    fn sync_parent_dir(&self, path: &Path) -> Result<()> {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let dir = std::fs::File::open(parent)?;
        dir.sync_all()?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn sync_parent_dir(&self, _path: &Path) -> Result<()> {
        // Directory handles cannot be opened for syncing portably off
        // unix; name durability is best-effort there.
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        Ok(std::fs::rename(from, to)?)
    }

    fn remove(&self, path: &Path) -> Result<()> {
        Ok(std::fs::remove_file(path)?)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The fault kinds [`FaultEnv`] can inject at a chosen operation index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// A write persists only a prefix (half) of its bytes and errors.
    ShortWrite,
    /// A write persists a seed-chosen prefix of its bytes and errors.
    TornWrite,
    /// `fsync` fails; nothing new becomes durable.
    FailedSync,
    /// `fsync` *lies*: reports success but persists nothing.
    IgnoredSync,
    /// The disk is full: the write persists nothing and errors.
    Enospc,
}

/// Every fault kind, for exhaustive matrix tests.
pub const ALL_FAULTS: [Fault; 5] = [
    Fault::ShortWrite,
    Fault::TornWrite,
    Fault::FailedSync,
    Fault::IgnoredSync,
    Fault::Enospc,
];

/// One not-yet-durable mutation of a file's content.
#[derive(Clone, Debug)]
enum Pending {
    /// Bytes written at an absolute offset (zero-fill any gap).
    Write { offset: usize, bytes: Vec<u8> },
    /// The file length was set (truncate or O_TRUNC open).
    SetLen(usize),
}

/// One simulated file: last-synced content, current in-memory content, and
/// the unsynced mutations in between.
#[derive(Clone, Debug, Default)]
struct FileBuf {
    /// Content as of the last successful `sync_file` (`None` = never
    /// synced; the durable basis is empty).
    durable: Option<Vec<u8>>,
    /// Content as processes see it right now.
    volatile: Vec<u8>,
    /// Mutations since the last sync, oldest first. On crash, a
    /// seed-chosen prefix of these (the last possibly torn) survives.
    pending: Vec<Pending>,
}

#[derive(Debug)]
struct FaultInner {
    files: Vec<FileBuf>,
    /// Name → file, as processes see it.
    volatile_ns: BTreeMap<PathBuf, usize>,
    /// Name → file, as of the last `sync_parent_dir`.
    durable_ns: BTreeMap<PathBuf, usize>,
    ops: u64,
    crashed: bool,
    crash_at: Option<u64>,
    faults: BTreeMap<u64, Fault>,
    rng: u64,
}

/// A deterministic in-memory [`StorageEnv`] that injects crashes and disk
/// faults. All state lives behind a mutex; the same seed and schedule
/// reproduce the same surviving disk image bit for bit.
///
/// Typical use: run a persistence schedule fault-free once to count
/// operations ([`ops`](FaultEnv::ops)), then re-run it once per crash
/// point with [`crash_at`](FaultEnv::crash_at) set, calling
/// [`restart`](FaultEnv::restart) after the poison fires and recovering
/// from whatever survived.
#[derive(Debug)]
pub struct FaultEnv {
    inner: Mutex<FaultInner>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn poisoned() -> GraphError {
    GraphError::Io("storage poisoned by simulated crash (injected)".into())
}

impl FaultInner {
    fn rand(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    /// Accounts one operation; returns its index and any fault scheduled
    /// for it, or the poison error if the environment already crashed.
    fn begin_op(&mut self) -> Result<(u64, Option<Fault>, bool)> {
        if self.crashed {
            return Err(poisoned());
        }
        let n = self.ops;
        self.ops += 1;
        let crash = self.crash_at == Some(n);
        Ok((n, self.faults.get(&n).copied(), crash))
    }

    fn file_id(&self, path: &Path) -> Result<usize> {
        self.volatile_ns.get(path).copied().ok_or_else(|| {
            GraphError::Io(format!("no such file (injected fs): {}", path.display()))
        })
    }
}

fn apply_pending(content: &mut Vec<u8>, op: &Pending, limit: Option<usize>) {
    match op {
        Pending::Write { offset, bytes } => {
            let take = limit.unwrap_or(bytes.len()).min(bytes.len());
            let end = offset + take;
            if content.len() < end {
                content.resize(end, 0);
            }
            content[*offset..end].copy_from_slice(&bytes[..take]);
        }
        Pending::SetLen(len) => {
            if limit.is_some() {
                return; // metadata ops are atomic: applied or not
            }
            content.resize(*len, 0);
        }
    }
}

impl FaultEnv {
    /// A fresh empty environment with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        FaultEnv {
            inner: Mutex::new(FaultInner {
                files: Vec::new(),
                volatile_ns: BTreeMap::new(),
                durable_ns: BTreeMap::new(),
                ops: 0,
                crashed: false,
                crash_at: None,
                faults: BTreeMap::new(),
                rng: seed ^ 0x5bf0_3635,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultInner> {
        self.inner.lock().expect("fault env poisoned")
    }

    /// Schedules a crash: the operation with index `op` (0-based, in
    /// execution order) and everything after it fail poisoned. A write at
    /// the crash point may leave a torn prefix.
    pub fn crash_at(&self, op: u64) {
        self.lock().crash_at = Some(op);
    }

    /// Schedules `fault` for the operation with index `op`.
    pub fn fault_at(&self, op: u64, fault: Fault) {
        self.lock().faults.insert(op, fault);
    }

    /// Operations performed so far (used to enumerate crash points after
    /// a fault-free run).
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Whether the simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Materializes a post-crash disk: the durable namespace with, per
    /// file, the last-synced content plus a seed-chosen prefix of the
    /// unsynced mutations (the first unapplied write possibly torn). The
    /// poison, crash point and any remaining scheduled faults are
    /// cleared. Valid whether or not the crash fired — calling it early
    /// simulates power loss right now.
    pub fn restart(&self) {
        let mut inner = self.lock();
        let mut survivors: Vec<(PathBuf, Vec<u8>)> = Vec::new();
        let named: Vec<(PathBuf, usize)> = inner
            .durable_ns
            .iter()
            .map(|(p, &id)| (p.clone(), id))
            .collect();
        for (path, id) in named {
            let (durable, pending) = {
                let f = &inner.files[id];
                (f.durable.clone(), f.pending.clone())
            };
            let mut content = durable.unwrap_or_default();
            let keep = if pending.is_empty() {
                0
            } else {
                (inner.rand() % (pending.len() as u64 + 1)) as usize
            };
            for op in &pending[..keep] {
                apply_pending(&mut content, op, None);
            }
            if keep < pending.len() {
                let torn = match &pending[keep] {
                    Pending::Write { bytes, .. } => {
                        (inner.rand() % (bytes.len() as u64 + 1)) as usize
                    }
                    Pending::SetLen(_) => 0,
                };
                if torn > 0 {
                    apply_pending(&mut content, &pending[keep], Some(torn));
                }
            }
            survivors.push((path, content));
        }
        inner.files.clear();
        inner.volatile_ns.clear();
        inner.durable_ns.clear();
        for (path, content) in survivors {
            let id = inner.files.len();
            inner.files.push(FileBuf {
                durable: Some(content.clone()),
                volatile: content,
                pending: Vec::new(),
            });
            inner.volatile_ns.insert(path.clone(), id);
            inner.durable_ns.insert(path, id);
        }
        inner.crashed = false;
        inner.crash_at = None;
        inner.faults.clear();
    }
}

impl StorageEnv for FaultEnv {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let mut inner = self.lock();
        let (_, _, crash) = inner.begin_op()?;
        if crash {
            inner.crashed = true;
            return Err(poisoned());
        }
        let id = inner.file_id(path)?;
        Ok(inner.files[id].volatile.clone())
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let mut inner = self.lock();
        let (_, fault, crash) = inner.begin_op()?;
        let id = match inner.volatile_ns.get(path) {
            Some(&id) => id,
            None => {
                let id = inner.files.len();
                inner.files.push(FileBuf::default());
                inner.volatile_ns.insert(path.to_path_buf(), id);
                id
            }
        };
        // Creating/truncating happens before any data lands, even when
        // the write itself then fails — exactly the O_TRUNC hazard that
        // makes in-place rewrites unsafe.
        let applied = match (crash, fault) {
            (true, _) => (inner.rand() % (bytes.len() as u64 + 1)) as usize,
            (_, Some(Fault::TornWrite)) => (inner.rand() % (bytes.len() as u64 + 1)) as usize,
            (_, Some(Fault::ShortWrite)) => bytes.len() / 2,
            (_, Some(Fault::Enospc)) => 0,
            _ => bytes.len(),
        };
        let f = &mut inner.files[id];
        f.pending.push(Pending::SetLen(0));
        f.volatile.clear();
        if applied > 0 {
            f.pending.push(Pending::Write {
                offset: 0,
                bytes: bytes[..applied].to_vec(),
            });
            f.volatile.extend_from_slice(&bytes[..applied]);
        }
        if crash {
            inner.crashed = true;
            return Err(poisoned());
        }
        match fault {
            Some(Fault::TornWrite) => Err(GraphError::Io("torn write (injected)".into())),
            Some(Fault::ShortWrite) => Err(GraphError::Io("short write (injected)".into())),
            Some(Fault::Enospc) => Err(GraphError::Io("no space left on device (injected)".into())),
            _ => Ok(()),
        }
    }

    fn write_at_end(&self, path: &Path, suffix_len: u64, bytes: &[u8]) -> Result<()> {
        let mut inner = self.lock();
        let (_, fault, crash) = inner.begin_op()?;
        let id = inner.file_id(path)?;
        let applied = match (crash, fault) {
            (true, _) => (inner.rand() % (bytes.len() as u64 + 1)) as usize,
            (_, Some(Fault::TornWrite)) => (inner.rand() % (bytes.len() as u64 + 1)) as usize,
            (_, Some(Fault::ShortWrite)) => bytes.len() / 2,
            (_, Some(Fault::Enospc)) => 0,
            _ => bytes.len(),
        };
        let f = &mut inner.files[id];
        let offset = f.volatile.len().saturating_sub(suffix_len as usize);
        if applied > 0 {
            f.pending.push(Pending::Write {
                offset,
                bytes: bytes[..applied].to_vec(),
            });
            let mut v = std::mem::take(&mut f.volatile);
            apply_pending(
                &mut v,
                &Pending::Write {
                    offset,
                    bytes: bytes[..applied].to_vec(),
                },
                None,
            );
            f.volatile = v;
        }
        if crash {
            inner.crashed = true;
            return Err(poisoned());
        }
        match fault {
            Some(Fault::TornWrite) => Err(GraphError::Io("torn write (injected)".into())),
            Some(Fault::ShortWrite) => Err(GraphError::Io("short write (injected)".into())),
            Some(Fault::Enospc) => Err(GraphError::Io("no space left on device (injected)".into())),
            _ => Ok(()),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        let mut inner = self.lock();
        let (_, _, crash) = inner.begin_op()?;
        if crash {
            inner.crashed = true;
            return Err(poisoned());
        }
        let id = inner.file_id(path)?;
        let f = &mut inner.files[id];
        f.pending.push(Pending::SetLen(len as usize));
        f.volatile.resize(len as usize, 0);
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> Result<()> {
        let mut inner = self.lock();
        let (_, fault, crash) = inner.begin_op()?;
        if crash {
            inner.crashed = true;
            return Err(poisoned());
        }
        let id = inner.file_id(path)?;
        match fault {
            Some(Fault::FailedSync) => Err(GraphError::Io("fsync failed (injected)".into())),
            Some(Fault::IgnoredSync) => Ok(()), // the lying disk
            _ => {
                let f = &mut inner.files[id];
                f.durable = Some(f.volatile.clone());
                f.pending.clear();
                Ok(())
            }
        }
    }

    fn sync_parent_dir(&self, _path: &Path) -> Result<()> {
        let mut inner = self.lock();
        let (_, fault, crash) = inner.begin_op()?;
        if crash {
            inner.crashed = true;
            return Err(poisoned());
        }
        match fault {
            Some(Fault::FailedSync) => Err(GraphError::Io("fsync failed (injected)".into())),
            Some(Fault::IgnoredSync) => Ok(()),
            _ => {
                inner.durable_ns = inner.volatile_ns.clone();
                Ok(())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut inner = self.lock();
        let (_, _, crash) = inner.begin_op()?;
        if crash {
            inner.crashed = true;
            return Err(poisoned());
        }
        let id = inner.file_id(from)?;
        inner.volatile_ns.remove(from);
        inner.volatile_ns.insert(to.to_path_buf(), id);
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        let mut inner = self.lock();
        let (_, _, crash) = inner.begin_op()?;
        if crash {
            inner.crashed = true;
            return Err(poisoned());
        }
        inner.file_id(path)?;
        inner.volatile_ns.remove(path);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().volatile_ns.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn synced_write_survives_restart() {
        let env = FaultEnv::new(7);
        env.write(&p("a"), b"hello").unwrap();
        env.sync_file(&p("a")).unwrap();
        env.sync_parent_dir(&p("a")).unwrap();
        env.restart();
        assert_eq!(env.read(&p("a")).unwrap(), b"hello");
    }

    #[test]
    fn unsynced_name_is_lost_on_restart() {
        let env = FaultEnv::new(7);
        env.write(&p("a"), b"hello").unwrap();
        env.sync_file(&p("a")).unwrap();
        // No directory sync: the name never became durable.
        env.restart();
        assert!(!env.exists(&p("a")));
    }

    #[test]
    fn unsynced_rename_reverts_on_restart() {
        let env = FaultEnv::new(7);
        env.write(&p("old"), b"v1").unwrap();
        env.sync_file(&p("old")).unwrap();
        env.sync_parent_dir(&p("old")).unwrap();
        env.write(&p("new"), b"v2").unwrap();
        env.sync_file(&p("new")).unwrap();
        env.rename(&p("new"), &p("old")).unwrap();
        // Crash before the directory sync: the rename is lost and the old
        // name still maps to the old content.
        env.restart();
        assert_eq!(env.read(&p("old")).unwrap(), b"v1");
    }

    #[test]
    fn durable_rename_commits() {
        let env = FaultEnv::new(7);
        env.write(&p("old"), b"v1").unwrap();
        env.sync_file(&p("old")).unwrap();
        env.sync_parent_dir(&p("old")).unwrap();
        write_durable(&env, &p("old"), b"v2").unwrap();
        env.restart();
        assert_eq!(env.read(&p("old")).unwrap(), b"v2");
    }

    #[test]
    fn restart_after_unsynced_append_keeps_a_prefix() {
        for seed in 0..32 {
            let env = FaultEnv::new(seed);
            env.write(&p("log"), b"HEAD").unwrap();
            env.sync_file(&p("log")).unwrap();
            env.sync_parent_dir(&p("log")).unwrap();
            env.write_at_end(&p("log"), 0, b"TAIL").unwrap();
            // Append never synced: the survivor is "HEAD" plus any prefix
            // of "TAIL".
            env.restart();
            let got = env.read(&p("log")).unwrap();
            assert!(got.starts_with(b"HEAD"), "{got:?}");
            assert!(got.len() <= b"HEADTAIL".len());
            assert_eq!(&got[4..], &b"TAIL"[..got.len() - 4], "{got:?}");
        }
    }

    #[test]
    fn crash_point_poisons_everything_after() {
        let env = FaultEnv::new(1);
        env.crash_at(2);
        env.write(&p("a"), b"x").unwrap(); // op 0
        env.sync_file(&p("a")).unwrap(); // op 1
        assert!(env.write(&p("a"), b"y").is_err()); // op 2: crash
        assert!(env.crashed());
        assert!(env.read(&p("a")).is_err()); // poisoned
        env.restart();
        assert!(!env.crashed());
    }

    #[test]
    fn ignored_sync_lies_and_loses_data() {
        let env = FaultEnv::new(9);
        env.write(&p("a"), b"v1").unwrap(); // op 0
        env.sync_file(&p("a")).unwrap(); // op 1
        env.sync_parent_dir(&p("a")).unwrap(); // op 2
        env.fault_at(4, Fault::IgnoredSync);
        env.write(&p("a"), b"v2-much-longer").unwrap(); // op 3
        env.sync_file(&p("a")).unwrap(); // op 4: lies
        env.restart();
        let got = env.read(&p("a")).unwrap();
        // The overwrite was never durable: any torn prefix of the new
        // content (possibly over the truncated base) may survive, but
        // never the full new content *guaranteed* — the point is the old
        // guarantee is gone. Deterministic per seed.
        assert!(got.len() <= b"v2-much-longer".len());
    }

    #[test]
    fn enospc_write_persists_nothing_but_truncates() {
        let env = FaultEnv::new(3);
        env.write(&p("a"), b"v1").unwrap();
        env.sync_file(&p("a")).unwrap();
        env.sync_parent_dir(&p("a")).unwrap();
        env.fault_at(3, Fault::Enospc);
        assert!(env.write(&p("a"), b"v2").is_err()); // op 3
                                                     // The volatile view reflects the O_TRUNC that preceded the failed
                                                     // write.
        assert_eq!(env.read(&p("a")).unwrap(), b"");
    }

    #[test]
    fn determinism_same_seed_same_survivor() {
        let image = |seed: u64| {
            let env = FaultEnv::new(seed);
            env.write(&p("f"), b"base").unwrap();
            env.sync_file(&p("f")).unwrap();
            env.sync_parent_dir(&p("f")).unwrap();
            env.write_at_end(&p("f"), 0, b"-unsynced-suffix").unwrap();
            env.restart();
            env.read(&p("f")).unwrap()
        };
        assert_eq!(image(42), image(42));
    }
}
