//! Deletion overlay over an immutable [`CsrGraph`].
//!
//! The CTC algorithms (Alg. 1, 3, 4 of the paper) peel a working graph by
//! repeatedly deleting vertices and edges. Rather than rebuilding CSR images,
//! [`DynGraph`] keeps per-vertex / per-edge alive flags and live degrees over
//! a borrowed base graph; peeling an edge is O(1) and neighborhood scans skip
//! dead entries. The paper's complexity analysis (§4.4) relies on exactly
//! this "record removals, never copy" strategy for its `O(m')` space bound.

use crate::csr::CsrGraph;
use crate::ids::{EdgeId, VertexId};

/// The owned buffers behind a [`DynGraph`], detached from any base graph.
///
/// Lets a long-lived caller (the pooled peel scratch of `ctc-core`) reuse
/// the overlay's allocations across graphs of different sizes:
/// [`DynGraph::with_buffers`] resets and adopts them,
/// [`DynGraph::into_buffers`] hands them back.
#[derive(Clone, Debug, Default)]
pub struct DynBuffers {
    vertex_alive: Vec<bool>,
    edge_alive: Vec<bool>,
    degree: Vec<u32>,
    alive_list: Vec<VertexId>,
    alive_pos: Vec<u32>,
}

/// A mutable view of a [`CsrGraph`] supporting vertex and edge deletion.
#[derive(Clone)]
pub struct DynGraph<'g> {
    base: &'g CsrGraph,
    vertex_alive: Vec<bool>,
    edge_alive: Vec<bool>,
    degree: Vec<u32>,
    /// Dense, unordered list of alive vertices (swap-removed on death), so
    /// hot loops iterate `O(alive)` instead of scanning dead slots.
    alive_list: Vec<VertexId>,
    /// Position of each vertex in `alive_list` (`u32::MAX` once dead).
    alive_pos: Vec<u32>,
    alive_edge_count: usize,
}

impl<'g> DynGraph<'g> {
    /// Creates a fully-alive view of `base`.
    pub fn new(base: &'g CsrGraph) -> Self {
        Self::with_buffers(base, DynBuffers::default())
    }

    /// Creates a fully-alive view of `base`, recycling `bufs`' allocations
    /// (the warm-path constructor: no heap traffic once the buffers have
    /// grown to the workload's high-water mark).
    pub fn with_buffers(base: &'g CsrGraph, bufs: DynBuffers) -> Self {
        let n = base.num_vertices();
        let m = base.num_edges();
        let DynBuffers {
            mut vertex_alive,
            mut edge_alive,
            mut degree,
            mut alive_list,
            mut alive_pos,
        } = bufs;
        vertex_alive.clear();
        vertex_alive.resize(n, true);
        edge_alive.clear();
        edge_alive.resize(m, true);
        degree.clear();
        degree.extend((0..n).map(|v| base.degree(VertexId::from(v)) as u32));
        alive_list.clear();
        alive_list.extend((0..n as u32).map(VertexId));
        alive_pos.clear();
        alive_pos.extend(0..n as u32);
        DynGraph {
            base,
            vertex_alive,
            edge_alive,
            degree,
            alive_list,
            alive_pos,
            alive_edge_count: m,
        }
    }

    /// Dismantles the overlay, returning its buffers for reuse.
    pub fn into_buffers(self) -> DynBuffers {
        DynBuffers {
            vertex_alive: self.vertex_alive,
            edge_alive: self.edge_alive,
            degree: self.degree,
            alive_list: self.alive_list,
            alive_pos: self.alive_pos,
        }
    }

    /// Removes `v` from the alive list (swap-remove, `O(1)`).
    fn unlist(&mut self, v: VertexId) {
        let p = self.alive_pos[v.index()] as usize;
        debug_assert!(self.alive_list[p] == v, "alive list out of sync");
        self.alive_list.swap_remove(p);
        if let Some(&moved) = self.alive_list.get(p) {
            self.alive_pos[moved.index()] = p as u32;
        }
        self.alive_pos[v.index()] = u32::MAX;
    }

    /// The underlying immutable graph.
    #[inline(always)]
    pub fn base(&self) -> &'g CsrGraph {
        self.base
    }

    /// Restores every vertex and edge to alive.
    pub fn reset(&mut self) {
        let n = self.base.num_vertices();
        self.vertex_alive.iter_mut().for_each(|b| *b = true);
        self.edge_alive.iter_mut().for_each(|b| *b = true);
        for v in 0..n {
            self.degree[v] = self.base.degree(VertexId::from(v)) as u32;
        }
        self.alive_list.clear();
        self.alive_list.extend((0..n as u32).map(VertexId));
        self.alive_pos.clear();
        self.alive_pos.extend(0..n as u32);
        self.alive_edge_count = self.base.num_edges();
    }

    /// Number of alive vertices.
    #[inline(always)]
    pub fn num_alive_vertices(&self) -> usize {
        self.alive_list.len()
    }

    /// Number of alive edges.
    #[inline(always)]
    pub fn num_alive_edges(&self) -> usize {
        self.alive_edge_count
    }

    /// `true` if vertex `v` has not been deleted.
    #[inline(always)]
    pub fn is_vertex_alive(&self, v: VertexId) -> bool {
        self.vertex_alive[v.index()]
    }

    /// `true` if edge `e` has not been deleted.
    #[inline(always)]
    pub fn is_edge_alive(&self, e: EdgeId) -> bool {
        self.edge_alive[e.index()]
    }

    /// Live degree of `v` (0 if deleted).
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degree[v.index()] as usize
    }

    /// Iterator over alive vertices in ascending id order.
    pub fn alive_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| VertexId::from(i))
    }

    /// The alive vertices as a dense slice, in **unspecified order**
    /// (swap-removal order). `O(alive)` to iterate — the peeling hot
    /// loops use this instead of scanning every vertex slot; use
    /// [`alive_vertices`](Self::alive_vertices) when ascending order
    /// matters.
    #[inline(always)]
    pub fn alive_vertex_list(&self) -> &[VertexId] {
        &self.alive_list
    }

    /// Iterator over alive edges as `(EdgeId, u, v)`.
    pub fn alive_edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.base
            .edges()
            .filter(move |(e, _, _)| self.edge_alive[e.index()])
    }

    /// Iterator over alive `(neighbor, edge)` pairs of `v`.
    ///
    /// An arc counts as alive when both its edge and the far endpoint are.
    #[inline]
    pub fn alive_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.base
            .incident(v)
            .filter(move |(nb, e)| self.edge_alive[e.index()] && self.vertex_alive[nb.index()])
    }

    /// The alive edge `{u, v}`, if any.
    pub fn alive_edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if !self.vertex_alive[u.index()] || !self.vertex_alive[v.index()] {
            return None;
        }
        let e = self.base.edge_between(u, v)?;
        self.edge_alive[e.index()].then_some(e)
    }

    /// Deletes edge `e`; returns `true` if it was alive.
    pub fn remove_edge(&mut self, e: EdgeId) -> bool {
        if !self.edge_alive[e.index()] {
            return false;
        }
        self.edge_alive[e.index()] = false;
        self.alive_edge_count -= 1;
        let (u, v) = self.base.edge_endpoints(e);
        self.degree[u.index()] -= 1;
        self.degree[v.index()] -= 1;
        true
    }

    /// Deletes vertex `v` and all its alive incident edges; returns the
    /// deleted edges. No-op (empty vec) if `v` was already dead.
    pub fn remove_vertex(&mut self, v: VertexId) -> Vec<EdgeId> {
        if !self.vertex_alive[v.index()] {
            return Vec::new();
        }
        let doomed: Vec<EdgeId> = self
            .base
            .incident(v)
            .filter(|(_, e)| self.edge_alive[e.index()])
            .map(|(_, e)| e)
            .collect();
        for &e in &doomed {
            self.remove_edge(e);
        }
        self.vertex_alive[v.index()] = false;
        self.unlist(v);
        doomed
    }

    /// Marks a vertex dead without touching edges.
    ///
    /// Caller must have removed the incident edges already; used by the
    /// truss-maintenance cascade where edges die first.
    pub fn mark_vertex_dead(&mut self, v: VertexId) -> bool {
        if !self.vertex_alive[v.index()] {
            return false;
        }
        debug_assert_eq!(
            self.degree[v.index()],
            0,
            "marking vertex {v} dead with live edges"
        );
        self.vertex_alive[v.index()] = false;
        self.unlist(v);
        true
    }

    /// Calls `f(w, e_uw, e_vw)` for every alive common neighbor `w` of `u`
    /// and `v` (both connecting edges alive). Merge over sorted rows.
    pub fn for_each_common_neighbor<F: FnMut(VertexId, EdgeId, EdgeId)>(
        &self,
        u: VertexId,
        v: VertexId,
        mut f: F,
    ) {
        self.for_each_common_neighbor_while(u, v, |w, euw, evw| {
            f(w, euw, evw);
            true
        });
    }

    /// [`for_each_common_neighbor`](Self::for_each_common_neighbor) with
    /// early exit: stops as soon as `f` returns `false`. Callers that know
    /// how many alive triangles an edge participates in (the truss
    /// maintainer keeps exactly that count) stop the row merge the moment
    /// the last one is found instead of walking both rows to the end.
    pub fn for_each_common_neighbor_while<F: FnMut(VertexId, EdgeId, EdgeId) -> bool>(
        &self,
        u: VertexId,
        v: VertexId,
        mut f: F,
    ) {
        let ru = self.base.neighbors(u);
        let eu = self.base.neighbor_edge_ids(u);
        let rv = self.base.neighbors(v);
        let ev = self.base.neighbor_edge_ids(v);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ru.len() && j < rv.len() {
            let a = ru[i];
            let b = rv[j];
            if a < b {
                i += 1;
            } else if b < a {
                j += 1;
            } else {
                let w = VertexId(a);
                let euw = EdgeId(eu[i]);
                let evw = EdgeId(ev[j]);
                if self.vertex_alive[w.index()]
                    && self.edge_alive[euw.index()]
                    && self.edge_alive[evw.index()]
                    && !f(w, euw, evw)
                {
                    return;
                }
                i += 1;
                j += 1;
            }
        }
    }

    /// Collects the alive vertex set (sorted ascending).
    pub fn alive_vertex_vec(&self) -> Vec<VertexId> {
        self.alive_vertices().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn k4() -> CsrGraph {
        graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn starts_fully_alive() {
        let g = k4();
        let d = DynGraph::new(&g);
        assert_eq!(d.num_alive_vertices(), 4);
        assert_eq!(d.num_alive_edges(), 6);
        assert_eq!(d.degree(VertexId(0)), 3);
    }

    #[test]
    fn remove_edge_updates_degrees() {
        let g = k4();
        let mut d = DynGraph::new(&g);
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        assert!(d.remove_edge(e));
        assert!(!d.remove_edge(e), "double delete must be a no-op");
        assert_eq!(d.degree(VertexId(0)), 2);
        assert_eq!(d.degree(VertexId(1)), 2);
        assert_eq!(d.num_alive_edges(), 5);
        assert!(d.alive_edge_between(VertexId(0), VertexId(1)).is_none());
        assert!(d.alive_edge_between(VertexId(0), VertexId(2)).is_some());
    }

    #[test]
    fn remove_vertex_cascades_to_edges() {
        let g = k4();
        let mut d = DynGraph::new(&g);
        let doomed = d.remove_vertex(VertexId(0));
        assert_eq!(doomed.len(), 3);
        assert_eq!(d.num_alive_vertices(), 3);
        assert_eq!(d.num_alive_edges(), 3);
        assert!(!d.is_vertex_alive(VertexId(0)));
        assert_eq!(d.alive_neighbors(VertexId(1)).count(), 2);
        assert!(d.remove_vertex(VertexId(0)).is_empty());
    }

    #[test]
    fn common_neighbors_respect_deletions() {
        let g = k4();
        let mut d = DynGraph::new(&g);
        let mut commons = Vec::new();
        d.for_each_common_neighbor(VertexId(0), VertexId(1), |w, _, _| commons.push(w.0));
        assert_eq!(commons, vec![2, 3]);

        // Killing vertex 2 removes it from the common set.
        d.remove_vertex(VertexId(2));
        commons.clear();
        d.for_each_common_neighbor(VertexId(0), VertexId(1), |w, _, _| commons.push(w.0));
        assert_eq!(commons, vec![3]);

        // Killing edge (0,3) removes 3 as well: the (0,3) side is dead.
        let e03 = g.edge_between(VertexId(0), VertexId(3)).unwrap();
        d.remove_edge(e03);
        commons.clear();
        d.for_each_common_neighbor(VertexId(0), VertexId(1), |w, _, _| commons.push(w.0));
        assert!(commons.is_empty());
    }

    #[test]
    fn reset_restores_everything() {
        let g = k4();
        let mut d = DynGraph::new(&g);
        d.remove_vertex(VertexId(1));
        d.reset();
        assert_eq!(d.num_alive_vertices(), 4);
        assert_eq!(d.num_alive_edges(), 6);
        assert_eq!(d.degree(VertexId(1)), 3);
    }

    #[test]
    fn alive_iterators_filter() {
        let g = k4();
        let mut d = DynGraph::new(&g);
        d.remove_vertex(VertexId(3));
        assert_eq!(
            d.alive_vertex_vec(),
            vec![VertexId(0), VertexId(1), VertexId(2)]
        );
        assert_eq!(d.alive_edges().count(), 3);
        let nbrs: Vec<u32> = d.alive_neighbors(VertexId(0)).map(|(v, _)| v.0).collect();
        assert_eq!(nbrs, vec![1, 2]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn alive_list_tracks_deaths_and_reset() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut d = DynGraph::new(&g);
        assert_eq!(d.alive_vertex_list().len(), 4);
        d.remove_vertex(VertexId(1));
        let mut list: Vec<u32> = d.alive_vertex_list().iter().map(|v| v.0).collect();
        list.sort_unstable();
        assert_eq!(list, vec![0, 2, 3]);
        assert_eq!(d.alive_vertex_list().len(), d.num_alive_vertices());
        // The unordered list and the ordered iterator agree as sets, at
        // every step of a deletion sequence.
        d.remove_vertex(VertexId(3));
        let mut unordered: Vec<VertexId> = d.alive_vertex_list().to_vec();
        unordered.sort_unstable();
        assert_eq!(unordered, d.alive_vertices().collect::<Vec<_>>());
        d.reset();
        assert_eq!(d.alive_vertex_list().len(), 4);
    }

    #[test]
    fn buffer_recycling_matches_fresh_overlay() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
        let mut d = DynGraph::new(&g);
        d.remove_vertex(VertexId(0));
        let bufs = d.into_buffers();
        // Adopt the dirty buffers for a *different* (larger) graph: the
        // overlay must come up fully alive and consistent.
        let g2 = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d2 = DynGraph::with_buffers(&g2, bufs);
        assert_eq!(d2.num_alive_vertices(), 5);
        assert_eq!(d2.num_alive_edges(), 4);
        assert_eq!(d2.degree(VertexId(1)), 2);
        assert_eq!(d2.alive_vertex_list().len(), 5);
    }

    #[test]
    fn alive_edge_between_dead_endpoint() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        let mut d = DynGraph::new(&g);
        assert!(d.alive_edge_between(VertexId(0), VertexId(1)).is_some());
        d.remove_vertex(VertexId(0));
        assert!(d.alive_edge_between(VertexId(0), VertexId(1)).is_none());
        assert!(d.alive_edge_between(VertexId(1), VertexId(2)).is_some());
    }

    #[test]
    fn base_accessor_exposes_parent() {
        let g = graph_from_edges(&[(0, 1)]);
        let d = DynGraph::new(&g);
        assert_eq!(d.base().num_edges(), 1);
    }

    #[test]
    fn clone_preserves_deletion_state() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
        let mut d = DynGraph::new(&g);
        d.remove_vertex(VertexId(2));
        let c = d.clone();
        assert_eq!(c.num_alive_vertices(), 2);
        assert_eq!(c.num_alive_edges(), 1);
    }

    #[test]
    #[should_panic]
    fn mark_dead_with_live_edges_panics_in_debug() {
        // Only meaningful with debug assertions; release builds skip it.
        if !cfg!(debug_assertions) {
            panic!("skip: debug assertion disabled");
        }
        let g = graph_from_edges(&[(0, 1)]);
        let mut d = DynGraph::new(&g);
        d.mark_vertex_dead(VertexId(0));
    }
}
