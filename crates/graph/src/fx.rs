//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The default std `SipHash 1-3` is collision-resistant but slow for the
//! short integer keys this workspace hashes (vertex pairs, edge ids). This is
//! the classic "Fx" multiply-rotate hash used by rustc: low quality, very
//! fast, and more than good enough for graph workloads where keys are
//! near-uniform ids. Implemented locally so the workspace stays within its
//! sanctioned dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// rustc-style Fx hasher: `hash = (rotl(hash, 5) ^ word) * SEED` per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8-byte chunks, then the tail. Graph keys are almost always
        // a single u32/u64 write, so this path is rarely taken.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline(always)]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Creates an empty [`FxHashMap`] with at least `cap` capacity.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Creates an empty [`FxHashSet`] with at least `cap` capacity.
pub fn fx_set_with_capacity<K>(cap: usize) -> FxHashSet<K> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<(u32, u32), u32> = fx_map_with_capacity(16);
        for i in 0..1000u32 {
            m.insert((i, i + 1), i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(10, 11)], 20);
        assert!(!m.contains_key(&(11, 10)));
    }

    #[test]
    fn set_basics() {
        let mut s: FxHashSet<u64> = fx_set_with_capacity(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(12345), h(12346));
    }

    #[test]
    fn byte_stream_hash_handles_tails() {
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        assert_ne!(h(b"abcdefghi"), h(b"abcdefgh"));
        assert_eq!(h(b"abcdefghi"), h(b"abcdefghi"));
    }
}
