//! Whole-graph and per-community summary statistics.
//!
//! Backs Table 2 (network statistics) and the density/size series of the
//! experiment figures.

use crate::csr::CsrGraph;
use crate::ids::VertexId;
use crate::triangles::{edge_supports, triangle_count};

/// Summary statistics of a network, in the shape of the paper's Table 2.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Maximum degree `d_max`.
    pub max_degree: usize,
    /// Mean degree `2m / n`.
    pub avg_degree: f64,
    /// Edge density `2m / (n (n-1))`.
    pub density: f64,
    /// Number of triangles.
    pub triangles: u64,
    /// Average local clustering coefficient.
    pub avg_clustering: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    let m = g.num_edges();
    GraphStats {
        num_vertices: n,
        num_edges: m,
        max_degree: g.max_degree(),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        },
        density: edge_density(n, m),
        triangles: triangle_count(g),
        avg_clustering: average_clustering(g),
    }
}

/// Edge density `2m / (n(n-1))` — the community quality metric used in the
/// figures ("(c) Density" panels).
pub fn edge_density(n: usize, m: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    2.0 * m as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Local clustering coefficient of one vertex.
pub fn local_clustering(g: &CsrGraph, v: VertexId) -> f64 {
    let d = g.degree(v);
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0u64;
    let row = g.neighbors(v);
    for (i, &a) in row.iter().enumerate() {
        for &b in &row[i + 1..] {
            if g.has_edge(VertexId(a), VertexId(b)) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d as f64 * (d as f64 - 1.0))
}

/// Mean of local clustering coefficients over all vertices.
pub fn average_clustering(g: &CsrGraph) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    // Closed-wedge counting via supports: sum of supports = 3 * triangles =
    // number of closed wedges counted per apex... computing per-vertex via
    // the support array avoids the quadratic neighbor scan on hubs.
    let sup = edge_supports(g);
    let mut closed_at = vec![0u64; n];
    for (e, u, v) in g.edges() {
        // Each triangle over edge (u,v) contributes a closed wedge at the
        // apex w; accumulate instead at u and v: every triangle {a,b,c}
        // contributes one closed wedge at each corner, and summing sup over
        // the 3 edges hits each corner exactly twice.
        closed_at[u.index()] += sup[e.index()] as u64;
        closed_at[v.index()] += sup[e.index()] as u64;
    }
    let mut acc = 0.0f64;
    for (v, &closed_twice) in closed_at.iter().enumerate() {
        let d = g.degree(VertexId::from(v));
        if d < 2 {
            continue;
        }
        let wedges = d as f64 * (d as f64 - 1.0) / 2.0;
        // closed_at[v] counted each triangle at v twice (once per incident
        // triangle edge at v).
        let closed = closed_twice as f64 / 2.0;
        acc += closed / wedges;
    }
    acc / n as f64
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Vertices sorted by descending degree — the paper's "degree rank" query
/// knob samples from prefixes of this order.
pub fn vertices_by_degree_desc(g: &CsrGraph) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = g.vertices().collect();
    vs.sort_by_key(|&v| std::cmp::Reverse((g.degree(v), v.0)));
    vs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn stats_of_k4() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 6);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.triangles, 4);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert!((s.avg_clustering - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_matches_local_definition() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let avg = average_clustering(&g);
        let by_local: f64 = (0..5)
            .map(|v| local_clustering(&g, VertexId(v)))
            .sum::<f64>()
            / 5.0;
        assert!(
            (avg - by_local).abs() < 1e-12,
            "avg {avg} vs local {by_local}"
        );
    }

    #[test]
    fn density_degenerate_cases() {
        assert_eq!(edge_density(0, 0), 0.0);
        assert_eq!(edge_density(1, 0), 0.0);
        assert!((edge_density(2, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (1, 3)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[1], 1); // vertex 0
        assert_eq!(h[2], 2); // vertices 2 and 3
        assert_eq!(h[3], 1); // vertex 1
    }

    #[test]
    fn degree_ordering_is_descending() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let order = vertices_by_degree_desc(&g);
        assert_eq!(order[0], VertexId(0));
        let degs: Vec<usize> = order.iter().map(|&v| g.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};

    #[test]
    fn stats_of_empty_graph() {
        let g = GraphBuilder::new().build();
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.avg_clustering, 0.0);
        assert!(degree_histogram(&g).len() <= 1);
    }

    #[test]
    fn histogram_of_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.ensure_vertices(5);
        let g = b.build();
        assert_eq!(degree_histogram(&g), vec![5]);
    }

    #[test]
    fn degree_order_ties_break_deterministically() {
        let g = graph_from_edges(&[(0, 1), (2, 3)]);
        let a = vertices_by_degree_desc(&g);
        let b = vertices_by_degree_desc(&g);
        assert_eq!(a, b);
    }
}
