//! Graph serialization: SNAP-style edge lists, a compact binary image, and
//! the building blocks of the `.ctci` snapshot format.
//!
//! The paper's datasets ship as whitespace-separated edge lists with `#`
//! comments (SNAP format); [`read_edge_list`] accepts exactly that. The
//! binary image is a little-endian `u32` dump framed with a magic header,
//! assembled through the `bytes` crate.
//!
//! The snapshot layer (consumed by `ctc_truss::snapshot`, specified
//! byte-for-byte in `docs/INDEX_FORMAT.md`) builds on three primitives
//! defined here: length-prefixed little-endian word sections
//! ([`put_u32_section`] / [`get_u32_section`] and the `u64` variants), the
//! [`fnv1a64`] checksum that seals a snapshot against corruption, and the
//! graph section ([`put_graph_section`] / [`get_graph_section`]) that dumps
//! the CSR arrays verbatim so loading skips the `O(m log m)` rebuild.

/// The storage seam persistence code writes through (re-exported here
/// because file IO is this module's concern; defined in
/// [`crate::storage`]).
pub use crate::storage::{real_env, tmp_path, write_durable, FaultEnv, RealEnv, StorageEnv};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::fx::FxHashMap;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Magic bytes prefixing the binary graph image.
pub const MAGIC: &[u8; 4] = b"CTCG";
/// Binary image format version.
pub const VERSION: u32 = 1;

/// Reads a SNAP-style edge list: one `u v` pair per line, `#` comments and
/// blank lines ignored. Vertex labels may be arbitrary non-negative
/// integers; they are compacted to dense ids in first-seen order. Returns
/// the graph and the dense-id → original-label table.
pub fn read_edge_list<R: Read>(reader: R) -> Result<(CsrGraph, Vec<u64>)> {
    let reader = BufReader::new(reader);
    let mut relabel: FxHashMap<u64, u32> = FxHashMap::default();
    let mut labels: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new();
    let intern = |raw: u64, labels: &mut Vec<u64>, relabel: &mut FxHashMap<u64, u32>| -> u32 {
        *relabel.entry(raw).or_insert_with(|| {
            labels.push(raw);
            (labels.len() - 1) as u32
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex ids".into(),
            })?;
            tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("not a vertex id: {tok:?}"),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let lu = intern(u, &mut labels, &mut relabel);
        let lv = intern(v, &mut labels, &mut relabel);
        builder.add_edge(lu, lv);
    }
    builder.ensure_vertices(labels.len());
    Ok((builder.build(), labels))
}

/// Writes `g` as an edge list (`u v` per line, dense ids).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> Result<()> {
    writeln!(
        w,
        "# ctc graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Serializes `g` into the compact binary image.
pub fn to_bytes(g: &CsrGraph) -> Bytes {
    let m = g.num_edges();
    let mut buf = BytesMut::with_capacity(16 + 8 * m);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(g.num_vertices() as u32);
    buf.put_u32_le(m as u32);
    for (_, u, v) in g.edges() {
        buf.put_u32_le(u.0);
        buf.put_u32_le(v.0);
    }
    buf.freeze()
}

/// Deserializes a graph from the binary image produced by [`to_bytes`].
pub fn from_bytes(mut data: &[u8]) -> Result<CsrGraph> {
    if data.len() < 16 {
        return Err(GraphError::Corrupt("image shorter than header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(GraphError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let n = data.get_u32_le() as usize;
    let m = data.get_u32_le() as usize;
    if data.remaining() < 8 * m {
        return Err(GraphError::Corrupt(format!(
            "truncated edge section: want {} bytes, have {}",
            8 * m,
            data.remaining()
        )));
    }
    let mut builder = GraphBuilder::with_capacity(m);
    builder.ensure_vertices(n);
    for _ in 0..m {
        let u = data.get_u32_le();
        let v = data.get_u32_le();
        if u as usize >= n || v as usize >= n {
            return Err(GraphError::Corrupt(format!(
                "edge ({u},{v}) out of range for n={n}"
            )));
        }
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

// ---------------------------------------------------------------------------
// Snapshot primitives (`.ctci` building blocks; see docs/INDEX_FORMAT.md).
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash, the `.ctci` snapshot checksum.
///
/// Chosen over a table-driven CRC for being 6 lines of dependency-free code
/// while still detecting every single-byte corruption: each step
/// `h ← (h ⊕ b) × p` is a bijection of the running state, so two byte
/// streams differing in one position can never re-converge.
///
/// ```
/// use ctc_graph::io::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325); // the FNV offset basis
/// assert_ne!(fnv1a64(b"ctci"), fnv1a64(b"ctcj"));
/// ```
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends a length-prefixed little-endian `u32` section: the word count as
/// a `u32`, then the words.
pub fn put_u32_section(buf: &mut BytesMut, words: &[u32]) {
    buf.put_u32_le(words.len() as u32);
    for &w in words {
        buf.put_u32_le(w);
    }
}

/// Reads a section written by [`put_u32_section`], advancing `data` past
/// it. `what` names the section in the [`GraphError::Corrupt`] message.
pub fn get_u32_section(data: &mut &[u8], what: &str) -> Result<Vec<u32>> {
    if data.remaining() < 4 {
        return Err(GraphError::Corrupt(format!(
            "truncated before {what} section length"
        )));
    }
    let len = data.get_u32_le() as usize;
    // Divide instead of multiplying so a crafted length can't overflow
    // usize (32-bit targets) and sneak past the bound into a Buf panic.
    if data.remaining() / 4 < len {
        return Err(GraphError::Corrupt(format!(
            "truncated {what} section: want {len} words, have {} bytes",
            data.remaining()
        )));
    }
    Ok((0..len).map(|_| data.get_u32_le()).collect())
}

/// Appends a length-prefixed little-endian `u64` section (count as `u32`,
/// then the words) — used for the snapshot's vertex-label table.
pub fn put_u64_section(buf: &mut BytesMut, words: &[u64]) {
    buf.put_u32_le(words.len() as u32);
    for &w in words {
        buf.put_u64_le(w);
    }
}

/// Reads a section written by [`put_u64_section`].
pub fn get_u64_section(data: &mut &[u8], what: &str) -> Result<Vec<u64>> {
    if data.remaining() < 4 {
        return Err(GraphError::Corrupt(format!(
            "truncated before {what} section length"
        )));
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() / 8 < len {
        return Err(GraphError::Corrupt(format!(
            "truncated {what} section: want {len} words, have {} bytes",
            data.remaining()
        )));
    }
    Ok((0..len).map(|_| data.get_u64_le()).collect())
}

/// Appends the snapshot graph section: `n`, `m`, then the four raw CSR
/// arrays (offsets, neighbors, arc edge ids, canonical endpoint pairs) as
/// `u32` sections. Dumping the arrays verbatim is what makes snapshot loads
/// cheap — [`get_graph_section`] revalidates instead of rebuilding.
pub fn put_graph_section(buf: &mut BytesMut, g: &CsrGraph) {
    buf.put_u32_le(g.num_vertices() as u32);
    buf.put_u32_le(g.num_edges() as u32);
    put_u32_section(buf, g.offsets_raw());
    put_u32_section(buf, g.neighbors_raw());
    put_u32_section(buf, g.arc_edges_raw());
    let mut flat = Vec::with_capacity(2 * g.num_edges());
    for (_, u, v) in g.edges() {
        flat.push(u.0);
        flat.push(v.0);
    }
    put_u32_section(buf, &flat);
}

/// Reads a graph section written by [`put_graph_section`], fully
/// revalidating the CSR invariants via [`CsrGraph::from_raw_parts`] so a
/// corrupt file can never yield a structurally broken graph.
pub fn get_graph_section(data: &mut &[u8]) -> Result<CsrGraph> {
    if data.remaining() < 8 {
        return Err(GraphError::Corrupt("truncated graph header".into()));
    }
    let n = data.get_u32_le() as usize;
    let m = data.get_u32_le() as usize;
    let offsets = get_u32_section(data, "offsets")?;
    let neighbors = get_u32_section(data, "neighbors")?;
    let arc_edge = get_u32_section(data, "arc edge ids")?;
    let flat = get_u32_section(data, "edge endpoints")?;
    if offsets.len() != n + 1 {
        return Err(GraphError::Corrupt(format!(
            "offsets section has {} entries, want n+1 = {}",
            offsets.len(),
            n + 1
        )));
    }
    if flat.len() != 2 * m {
        return Err(GraphError::Corrupt(format!(
            "edge section has {} words, want 2m = {}",
            flat.len(),
            2 * m
        )));
    }
    let edges: Vec<(u32, u32)> = flat.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    CsrGraph::from_raw_parts(offsets, neighbors, arc_edge, edges)
}

/// Loads an edge-list file from disk.
pub fn load_edge_list_path<P: AsRef<Path>>(path: P) -> Result<(CsrGraph, Vec<u64>)> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

/// Saves an edge-list file to disk.
pub fn save_edge_list_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::ids::VertexId;

    #[test]
    fn edge_list_roundtrip() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let (g2, labels) = read_edge_list(&out[..]).unwrap();
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn snap_style_input_parses() {
        let text = "# comment line\n\n5 7\n7 9\n5 9\n";
        let (g, labels) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(labels, vec![5, 7, 9]);
        // Dense relabeling: original 5 is dense 0.
        assert!(g.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\n2 x\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_token_is_parse_error() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn binary_roundtrip() {
        let g = graph_from_edges(&[(0, 3), (1, 3), (2, 3), (0, 1)]);
        let img = to_bytes(&g);
        let g2 = from_bytes(&img).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_bytes(b"nope").is_err());
        assert!(from_bytes(b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00").is_err());
        // Valid header claiming edges that are not present.
        let mut img = BytesMut::new();
        img.put_slice(MAGIC);
        img.put_u32_le(VERSION);
        img.put_u32_le(2);
        img.put_u32_le(5);
        assert!(from_bytes(&img).is_err());
    }

    #[test]
    fn version_mismatch_is_typed() {
        let g = graph_from_edges(&[(0, 1)]);
        let mut img = BytesMut::new();
        img.put_slice(&to_bytes(&g));
        let mut raw = img.to_vec();
        raw[4] = 99; // bump the version field
        assert_eq!(
            from_bytes(&raw).unwrap_err(),
            GraphError::UnsupportedVersion {
                found: 99,
                supported: VERSION
            }
        );
    }

    #[test]
    fn u32_sections_roundtrip_and_reject_truncation() {
        let mut buf = BytesMut::new();
        put_u32_section(&mut buf, &[7, 8, 9]);
        put_u32_section(&mut buf, &[]);
        let raw = buf.to_vec();
        let mut data = &raw[..];
        assert_eq!(get_u32_section(&mut data, "a").unwrap(), vec![7, 8, 9]);
        assert_eq!(get_u32_section(&mut data, "b").unwrap(), Vec::<u32>::new());
        assert!(data.is_empty());
        let mut short = &raw[..raw.len() - 2];
        assert!(get_u32_section(&mut short, "a").is_ok());
        assert!(matches!(
            get_u32_section(&mut short, "b").unwrap_err(),
            GraphError::Corrupt(_)
        ));
        let mut empty: &[u8] = &[];
        assert!(get_u32_section(&mut empty, "c").is_err());
    }

    #[test]
    fn huge_section_length_is_rejected_not_panicking() {
        // A length word near u32::MAX must fail the bound check cleanly on
        // every target width, never reach the Buf reads.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0x4000_0002);
        buf.put_u32_le(7);
        let raw = buf.to_vec();
        let mut data = &raw[..];
        assert!(get_u32_section(&mut data, "huge").is_err());
        let mut data = &raw[..];
        assert!(get_u64_section(&mut data, "huge").is_err());
    }

    #[test]
    fn u64_sections_roundtrip() {
        let mut buf = BytesMut::new();
        put_u64_section(&mut buf, &[u64::MAX, 0, 42]);
        let raw = buf.to_vec();
        let mut data = &raw[..];
        assert_eq!(
            get_u64_section(&mut data, "labels").unwrap(),
            vec![u64::MAX, 0, 42]
        );
        let mut short = &raw[..raw.len() - 1];
        assert!(get_u64_section(&mut short, "labels").is_err());
    }

    #[test]
    fn graph_section_roundtrip() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (1, 4)]);
        let mut buf = BytesMut::new();
        put_graph_section(&mut buf, &g);
        let raw = buf.to_vec();
        let mut data = &raw[..];
        let g2 = get_graph_section(&mut data).unwrap();
        assert_eq!(g, g2);
        assert!(data.is_empty());
        // Any truncation point fails cleanly.
        for cut in [0, 4, 9, raw.len() - 1] {
            let mut short = &raw[..cut];
            assert!(get_graph_section(&mut short).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn fnv_checksum_is_stable_and_sensitive() {
        let a = fnv1a64(b"closest truss community");
        assert_eq!(a, fnv1a64(b"closest truss community"));
        for i in 0..23 {
            let mut flipped = b"closest truss community".to_vec();
            flipped[i] ^= 0x10;
            assert_ne!(a, fnv1a64(&flipped), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn binary_rejects_out_of_range_edge() {
        let mut img = BytesMut::new();
        img.put_slice(MAGIC);
        img.put_u32_le(VERSION);
        img.put_u32_le(2); // n = 2
        img.put_u32_le(1); // m = 1
        img.put_u32_le(0);
        img.put_u32_le(7); // vertex 7 out of range
        assert!(from_bytes(&img).is_err());
    }
}
