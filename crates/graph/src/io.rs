//! Graph serialization: SNAP-style edge lists and a compact binary image.
//!
//! The paper's datasets ship as whitespace-separated edge lists with `#`
//! comments (SNAP format); [`read_edge_list`] accepts exactly that. The
//! binary image is a little-endian `u32` dump framed with a magic header,
//! assembled through the `bytes` crate.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::fx::FxHashMap;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Magic bytes prefixing the binary graph image.
pub const MAGIC: &[u8; 4] = b"CTCG";
/// Binary image format version.
pub const VERSION: u32 = 1;

/// Reads a SNAP-style edge list: one `u v` pair per line, `#` comments and
/// blank lines ignored. Vertex labels may be arbitrary non-negative
/// integers; they are compacted to dense ids in first-seen order. Returns
/// the graph and the dense-id → original-label table.
pub fn read_edge_list<R: Read>(reader: R) -> Result<(CsrGraph, Vec<u64>)> {
    let reader = BufReader::new(reader);
    let mut relabel: FxHashMap<u64, u32> = FxHashMap::default();
    let mut labels: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new();
    let intern = |raw: u64, labels: &mut Vec<u64>, relabel: &mut FxHashMap<u64, u32>| -> u32 {
        *relabel.entry(raw).or_insert_with(|| {
            labels.push(raw);
            (labels.len() - 1) as u32
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex ids".into(),
            })?;
            tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("not a vertex id: {tok:?}"),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let lu = intern(u, &mut labels, &mut relabel);
        let lv = intern(v, &mut labels, &mut relabel);
        builder.add_edge(lu, lv);
    }
    builder.ensure_vertices(labels.len());
    Ok((builder.build(), labels))
}

/// Writes `g` as an edge list (`u v` per line, dense ids).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> Result<()> {
    writeln!(
        w,
        "# ctc graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Serializes `g` into the compact binary image.
pub fn to_bytes(g: &CsrGraph) -> Bytes {
    let m = g.num_edges();
    let mut buf = BytesMut::with_capacity(16 + 8 * m);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(g.num_vertices() as u32);
    buf.put_u32_le(m as u32);
    for (_, u, v) in g.edges() {
        buf.put_u32_le(u.0);
        buf.put_u32_le(v.0);
    }
    buf.freeze()
}

/// Deserializes a graph from the binary image produced by [`to_bytes`].
pub fn from_bytes(mut data: &[u8]) -> Result<CsrGraph> {
    if data.len() < 16 {
        return Err(GraphError::Corrupt("image shorter than header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(GraphError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let n = data.get_u32_le() as usize;
    let m = data.get_u32_le() as usize;
    if data.remaining() < 8 * m {
        return Err(GraphError::Corrupt(format!(
            "truncated edge section: want {} bytes, have {}",
            8 * m,
            data.remaining()
        )));
    }
    let mut builder = GraphBuilder::with_capacity(m);
    builder.ensure_vertices(n);
    for _ in 0..m {
        let u = data.get_u32_le();
        let v = data.get_u32_le();
        if u as usize >= n || v as usize >= n {
            return Err(GraphError::Corrupt(format!(
                "edge ({u},{v}) out of range for n={n}"
            )));
        }
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Loads an edge-list file from disk.
pub fn load_edge_list_path<P: AsRef<Path>>(path: P) -> Result<(CsrGraph, Vec<u64>)> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

/// Saves an edge-list file to disk.
pub fn save_edge_list_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::ids::VertexId;

    #[test]
    fn edge_list_roundtrip() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let (g2, labels) = read_edge_list(&out[..]).unwrap();
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn snap_style_input_parses() {
        let text = "# comment line\n\n5 7\n7 9\n5 9\n";
        let (g, labels) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(labels, vec![5, 7, 9]);
        // Dense relabeling: original 5 is dense 0.
        assert!(g.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\n2 x\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_token_is_parse_error() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn binary_roundtrip() {
        let g = graph_from_edges(&[(0, 3), (1, 3), (2, 3), (0, 1)]);
        let img = to_bytes(&g);
        let g2 = from_bytes(&img).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_bytes(b"nope").is_err());
        assert!(from_bytes(b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00").is_err());
        // Valid header claiming edges that are not present.
        let mut img = BytesMut::new();
        img.put_slice(MAGIC);
        img.put_u32_le(VERSION);
        img.put_u32_le(2);
        img.put_u32_le(5);
        assert!(from_bytes(&img).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_edge() {
        let mut img = BytesMut::new();
        img.put_slice(MAGIC);
        img.put_u32_le(VERSION);
        img.put_u32_le(2); // n = 2
        img.put_u32_le(1); // m = 1
        img.put_u32_le(0);
        img.put_u32_le(7); // vertex 7 out of range
        assert!(from_bytes(&img).is_err());
    }
}
