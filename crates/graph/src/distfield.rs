//! Incremental single-source distance fields over a [`DynGraph`].
//!
//! The peeling loops of the CTC algorithms (Alg. 1, 4, 5) need, every
//! round, the BFS distance from each query vertex to every live vertex.
//! Recomputing |Q| full BFS passes per round is the dominant query-time
//! cost. The paper's own complexity argument (§4.4) rests on the fact that
//! peeling only ever *deletes* vertices and edges — and under deletion,
//! shortest-path distances are monotone non-decreasing. [`DistanceField`]
//! exploits exactly that monotonicity: after a deletion batch it repairs
//! only the part of the BFS tree that lost its parent certificate, in the
//! spirit of Ramalingam–Reps dynamic SSSP restricted to unit weights.
//!
//! The repair runs in two phases:
//!
//! 1. **Disown** — every alive vertex that lost an edge to a vertex one
//!    level closer is a *suspect*. Suspects are processed in increasing
//!    old-distance order: a suspect that still has an alive neighbor at
//!    `dist − 1` keeps its distance; otherwise it is *orphaned* (distance
//!    provisionally [`INF`]) and its children become suspects.
//! 2. **Re-settle** — a multi-source BFS from the certified boundary
//!    (settled neighbors of orphans) re-labels every orphan with its new,
//!    strictly larger distance; orphans the BFS never reaches are now
//!    disconnected from the source and stay [`INF`].
//!
//! Cost per batch is `O(affected + |deleted edges|)` rather than `O(n+m)`
//! per source, and all working memory (frontier queues, bucket queues,
//!  visitation marks) is epoch-stamped and pooled, so a warm field performs
//! no heap allocation and no `O(n)` clear between rounds. The
//! from-scratch BFS ([`DistanceField::init`], plus
//! [`bfs_distances`](crate::bfs_distances)) remains the correctness oracle;
//! the property suite pins `repair == recompute` on random graphs and
//! deletion schedules.

use crate::dynamic::DynGraph;
use crate::ids::{EdgeId, VertexId};
use crate::traversal::INF;

/// Epoch-stamped membership marks: a visited-set with `O(1)` clear.
///
/// [`clear`](Self::clear) bumps an epoch instead of touching memory; a
/// slot is marked iff its stamp equals the current epoch. On the `u32`
/// epoch wraparound every stamp is zeroed, so marks from four billion
/// clears ago can never alias. This is the one shared implementation of
/// the wraparound-sensitive idiom the BFS and repair machinery relies on
/// (distance-field settled tags, suspect marks, the peel scratch's
/// changed-vertex dedup in `ctc-core`).
#[derive(Clone, Debug)]
pub struct EpochMarks {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Default for EpochMarks {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochMarks {
    /// An empty mark set; size it with [`ensure`](Self::ensure).
    pub fn new() -> Self {
        // Stamps start at 0, so the live epoch must never be 0.
        EpochMarks {
            stamp: Vec::new(),
            epoch: 1,
        }
    }

    /// Grows to cover `n` slots (new slots come up unmarked).
    pub fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    /// Unmarks every slot in `O(1)` (`O(n)` only on epoch wraparound).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// `true` if slot `i` is marked.
    #[inline(always)]
    pub fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// Marks slot `i`; `true` if it was previously unmarked.
    #[inline(always)]
    pub fn insert(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }
}

/// A pooled, incrementally-repairable single-source BFS distance array.
///
/// ```
/// use ctc_graph::{graph_from_edges, DistanceField, DynGraph, VertexId, INF};
///
/// let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
/// let mut live = DynGraph::new(&g);
/// let mut field = DistanceField::new();
/// field.init(&live, VertexId(0));
/// assert_eq!(field.dist(VertexId(3)), 2); // via 4
///
/// // Deleting vertex 4 re-routes 3 through the path 0-1-2-3.
/// let dead_edges = live.remove_vertex(VertexId(4));
/// field.repair(&live, &[VertexId(4)], &dead_edges);
/// assert_eq!(field.dist(VertexId(3)), 3);
/// assert_eq!(field.dist(VertexId(4)), INF);
/// ```
pub struct DistanceField {
    src: u32,
    /// Source deleted: the field reports [`INF`] everywhere.
    dead: bool,
    /// Distance per vertex slot; valid iff the slot is in `settled`.
    dist: Vec<u32>,
    /// Which slots hold a current distance (cleared per [`init`]).
    settled: EpochMarks,
    /// BFS frontier for [`init`](Self::init) (reused across runs).
    queue: Vec<u32>,
    /// Per-repair "already a suspect" mark.
    mark: EpochMarks,
    /// Phase-1 bucket queue, indexed by old distance.
    levels: Vec<Vec<u32>>,
    /// Phase-2 bucket queue, indexed by candidate new distance.
    buckets: Vec<Vec<u32>>,
    /// Alive vertices whose distance changed in the last repair.
    changed: Vec<VertexId>,
}

impl Default for DistanceField {
    fn default() -> Self {
        Self::new()
    }
}

impl DistanceField {
    /// An empty field; size adapts to the graph on [`init`](Self::init).
    pub fn new() -> Self {
        DistanceField {
            src: 0,
            dead: true,
            dist: Vec::new(),
            settled: EpochMarks::new(),
            queue: Vec::new(),
            mark: EpochMarks::new(),
            levels: Vec::new(),
            buckets: Vec::new(),
            changed: Vec::new(),
        }
    }

    /// The source vertex of the most recent [`init`](Self::init).
    pub fn source(&self) -> VertexId {
        VertexId(self.src)
    }

    /// `true` once the source itself has been deleted; every distance is
    /// then [`INF`].
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Alive vertices whose distance changed (strictly increased, possibly
    /// to [`INF`]) in the most recent [`repair`](Self::repair). Deleted
    /// vertices are *not* listed — the caller already knows them.
    pub fn changed(&self) -> &[VertexId] {
        &self.changed
    }

    /// Distance from the source to `v` ([`INF`] if unreachable, deleted,
    /// or the source is dead).
    #[inline(always)]
    pub fn dist(&self, v: VertexId) -> u32 {
        if self.dead || !self.settled.contains(v.index()) {
            INF
        } else {
            self.dist[v.index()]
        }
    }

    fn ensure(&mut self, n: usize) {
        self.settled.ensure(n);
        self.mark.ensure(n);
        if self.dist.len() < n {
            self.dist.resize(n, INF);
        }
    }

    /// Runs a full BFS from `src` over the alive part of `live`,
    /// overwriting the field. Epoch-stamped: no `O(n)` clear.
    pub fn init(&mut self, live: &DynGraph<'_>, src: VertexId) {
        let n = live.base().num_vertices();
        self.ensure(n);
        self.settled.clear();
        self.changed.clear();
        self.src = src.0;
        self.dead = !live.is_vertex_alive(src);
        if self.dead {
            return;
        }
        self.queue.clear();
        self.settled.insert(src.index());
        self.dist[src.index()] = 0;
        self.queue.push(src.0);
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = VertexId(self.queue[head]);
            head += 1;
            let dv = self.dist[v.index()];
            for (nb, _) in live.alive_neighbors(v) {
                let i = nb.index();
                if self.settled.insert(i) {
                    self.dist[i] = dv + 1;
                    self.queue.push(nb.0);
                }
            }
        }
    }

    /// Repairs the field after `deleted_vertices` / `deleted_edges` were
    /// removed from `live` (which must already reflect the deletion — the
    /// state a [`TrussMaintainer`](../../ctc_truss) cascade leaves behind).
    ///
    /// `deleted_edges` must contain **every** edge removed by the batch
    /// (incident edges of deleted vertices included); the pre-deletion
    /// distances of just-deleted vertices are still readable and are used
    /// to decide which survivors lost their parent certificate. Distances
    /// only ever increase; vertices cut off from the source become
    /// [`INF`]. After the call, [`changed`](Self::changed) lists the alive
    /// vertices whose distance moved.
    pub fn repair(
        &mut self,
        live: &DynGraph<'_>,
        deleted_vertices: &[VertexId],
        deleted_edges: &[EdgeId],
    ) {
        self.changed.clear();
        if self.dead {
            return;
        }
        if deleted_vertices.iter().any(|&v| v.0 == self.src) {
            self.dead = true;
            return;
        }
        self.mark.clear();

        // Phase 1 — seed suspects: alive endpoints of deleted edges whose
        // recorded distance relied on the other (one-level-closer) side.
        let mut min_lvl = usize::MAX;
        let mut max_lvl = 0usize;
        for &e in deleted_edges {
            let (u, v) = live.base().edge_endpoints(e);
            for (x, parent) in [(u, v), (v, u)] {
                if !live.is_vertex_alive(x) {
                    continue;
                }
                let (xi, pi) = (x.index(), parent.index());
                if !self.settled.contains(xi) || !self.settled.contains(pi) {
                    continue; // unreachable before the batch: still unreachable
                }
                let (dx, dp) = (self.dist[xi], self.dist[pi]);
                if dp != INF && dx == dp + 1 && self.mark.insert(xi) {
                    let lvl = dx as usize;
                    if self.levels.len() <= lvl {
                        self.levels.resize_with(lvl + 1, Vec::new);
                    }
                    self.levels[lvl].push(x.0);
                    min_lvl = min_lvl.min(lvl);
                    max_lvl = max_lvl.max(lvl);
                }
            }
        }
        if min_lvl == usize::MAX {
            // No survivor lost a certificate; only the deleted slots move.
            self.invalidate_deleted(deleted_vertices);
            return;
        }

        // Phase 1 — disown: process suspects by increasing old distance.
        // When level `l` is processed every vertex below it is final, so
        // "has an alive neighbor at l−1" is a sound keep-certificate.
        let mut lvl = min_lvl;
        while lvl <= max_lvl {
            let mut bucket = std::mem::take(&mut self.levels[lvl]);
            for &x in &bucket {
                let x = VertexId(x);
                let certified = live.alive_neighbors(x).any(|(w, _)| {
                    self.settled.contains(w.index())
                        && self.dist[w.index()] != INF
                        && self.dist[w.index()] as usize + 1 == lvl
                });
                if certified {
                    continue;
                }
                self.dist[x.index()] = INF; // orphaned, to be re-settled
                self.changed.push(x);
                for (y, _) in live.alive_neighbors(x) {
                    let yi = y.index();
                    if self.settled.contains(yi)
                        && self.dist[yi] as usize == lvl + 1
                        && self.mark.insert(yi)
                    {
                        if self.levels.len() <= lvl + 1 {
                            self.levels.resize_with(lvl + 2, Vec::new);
                        }
                        self.levels[lvl + 1].push(y.0);
                        max_lvl = max_lvl.max(lvl + 1);
                    }
                }
            }
            bucket.clear();
            self.levels[lvl] = bucket;
            lvl += 1;
        }

        // Phase 2 — re-settle: multi-source BFS from the certified
        // boundary, bucketed by candidate distance (distances are unit, so
        // buckets pop in sorted order). Every alive neighbor of an orphan
        // had a finite pre-batch distance, so any INF neighbor seen here
        // is itself an unsettled orphan — never a previously-unreachable
        // vertex being wrongly revived.
        let mut min_b = usize::MAX;
        let mut max_b = 0usize;
        for i in 0..self.changed.len() {
            let o = self.changed[i];
            let mut best = INF;
            for (w, _) in live.alive_neighbors(o) {
                if self.settled.contains(w.index()) {
                    let dw = self.dist[w.index()];
                    if dw != INF {
                        best = best.min(dw + 1);
                    }
                }
            }
            if best != INF {
                let b = best as usize;
                if self.buckets.len() <= b {
                    self.buckets.resize_with(b + 1, Vec::new);
                }
                self.buckets[b].push(o.0);
                min_b = min_b.min(b);
                max_b = max_b.max(b);
            }
        }
        let mut d = min_b;
        while d <= max_b {
            if d >= self.buckets.len() {
                break;
            }
            let mut bucket = std::mem::take(&mut self.buckets[d]);
            for &x in &bucket {
                let xi = x as usize;
                if self.dist[xi] != INF {
                    continue; // settled earlier at a smaller distance
                }
                self.dist[xi] = d as u32;
                for (y, _) in live.alive_neighbors(VertexId(x)) {
                    let yi = y.index();
                    if self.settled.contains(yi) && self.dist[yi] == INF {
                        if self.buckets.len() <= d + 1 {
                            self.buckets.resize_with(d + 2, Vec::new);
                        }
                        self.buckets[d + 1].push(y.0);
                        max_b = max_b.max(d + 1);
                    }
                }
            }
            bucket.clear();
            self.buckets[d] = bucket;
            d += 1;
        }

        self.invalidate_deleted(deleted_vertices);
    }

    /// Marks this round's deleted vertices [`INF`] so later reads (and
    /// later repairs) never see their stale pre-deletion distances.
    fn invalidate_deleted(&mut self, deleted_vertices: &[VertexId]) {
        for &v in deleted_vertices {
            if self.settled.contains(v.index()) {
                self.dist[v.index()] = INF;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::csr::CsrGraph;
    use crate::traversal::bfs_distances;

    /// Full-recompute oracle: field must equal a fresh BFS over `live`.
    fn assert_matches_oracle(field: &DistanceField, live: &DynGraph<'_>, src: VertexId) {
        let fresh = bfs_distances(live, src);
        for v in 0..live.base().num_vertices() {
            let v = VertexId::from(v);
            let expected = if live.is_vertex_alive(v) {
                fresh[v.index()]
            } else {
                INF
            };
            assert_eq!(
                field.dist(v),
                expected,
                "vertex {v} after deletions (src {src})"
            );
        }
    }

    fn grid() -> CsrGraph {
        // 4x4 grid: enough alternate paths to exercise re-routing.
        let mut edges = Vec::new();
        for r in 0..4u32 {
            for c in 0..4u32 {
                let v = r * 4 + c;
                if c + 1 < 4 {
                    edges.push((v, v + 1));
                }
                if r + 1 < 4 {
                    edges.push((v, v + 4));
                }
            }
        }
        graph_from_edges(&edges)
    }

    #[test]
    fn init_matches_bfs() {
        let g = grid();
        let live = DynGraph::new(&g);
        let mut f = DistanceField::new();
        f.init(&live, VertexId(0));
        assert_matches_oracle(&f, &live, VertexId(0));
        assert!(!f.is_dead());
        assert_eq!(f.source(), VertexId(0));
    }

    #[test]
    fn repair_after_single_vertex_deletion() {
        let g = grid();
        let mut live = DynGraph::new(&g);
        let mut f = DistanceField::new();
        f.init(&live, VertexId(0));
        let dead = live.remove_vertex(VertexId(5));
        f.repair(&live, &[VertexId(5)], &dead);
        assert_matches_oracle(&f, &live, VertexId(0));
        assert!(f.changed().iter().all(|&v| live.is_vertex_alive(v)));
    }

    #[test]
    fn repair_detects_disconnection() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let mut live = DynGraph::new(&g);
        let mut f = DistanceField::new();
        f.init(&live, VertexId(0));
        let dead = live.remove_vertex(VertexId(1));
        f.repair(&live, &[VertexId(1)], &dead);
        assert_eq!(f.dist(VertexId(2)), INF);
        assert_eq!(f.dist(VertexId(3)), INF);
        assert_eq!(f.dist(VertexId(0)), 0);
        assert_matches_oracle(&f, &live, VertexId(0));
    }

    #[test]
    fn repair_with_pure_edge_deletion() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)]);
        let mut live = DynGraph::new(&g);
        let mut f = DistanceField::new();
        f.init(&live, VertexId(0));
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        live.remove_edge(e);
        f.repair(&live, &[], &[e]);
        assert_matches_oracle(&f, &live, VertexId(0));
        assert_eq!(f.dist(VertexId(1)), 2, "1 re-routes via 2");
    }

    #[test]
    fn source_deletion_kills_the_field() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        let mut live = DynGraph::new(&g);
        let mut f = DistanceField::new();
        f.init(&live, VertexId(0));
        let dead = live.remove_vertex(VertexId(0));
        f.repair(&live, &[VertexId(0)], &dead);
        assert!(f.is_dead());
        for v in 0..3 {
            assert_eq!(f.dist(VertexId(v)), INF);
        }
    }

    #[test]
    fn sequential_batches_stay_exact() {
        let g = grid();
        let mut live = DynGraph::new(&g);
        let mut f = DistanceField::new();
        f.init(&live, VertexId(0));
        for &victim in &[15u32, 6, 9, 3, 12] {
            let dead = live.remove_vertex(VertexId(victim));
            f.repair(&live, &[VertexId(victim)], &dead);
            assert_matches_oracle(&f, &live, VertexId(0));
        }
    }

    #[test]
    fn multi_vertex_batch() {
        let g = grid();
        let mut live = DynGraph::new(&g);
        let mut f = DistanceField::new();
        f.init(&live, VertexId(12));
        let batch = [VertexId(5), VertexId(6), VertexId(10)];
        let mut dead_edges = Vec::new();
        for &v in &batch {
            dead_edges.extend(live.remove_vertex(v));
        }
        f.repair(&live, &batch, &dead_edges);
        assert_matches_oracle(&f, &live, VertexId(12));
    }

    #[test]
    fn reinit_recycles_buffers() {
        let g = grid();
        let mut live = DynGraph::new(&g);
        let mut f = DistanceField::new();
        f.init(&live, VertexId(0));
        let dead = live.remove_vertex(VertexId(1));
        f.repair(&live, &[VertexId(1)], &dead);
        // A second session over a fresh overlay must be indistinguishable
        // from a fresh field.
        let live2 = DynGraph::new(&g);
        f.init(&live2, VertexId(7));
        assert_matches_oracle(&f, &live2, VertexId(7));
    }
}
