//! Incremental construction of [`CsrGraph`]s.
//!
//! The builder accepts an arbitrary multiset of undirected edges, drops
//! self-loops and duplicates, and produces a compact CSR image. All paper
//! algorithms assume a simple undirected graph (§2), so normalization lives
//! here, once.

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// Builder for [`CsrGraph`].
///
/// ```
/// use ctc_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(1, 2); // duplicate, dropped
/// b.add_edge(2, 2); // self-loop, dropped
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32)>,
    max_vertex: Option<u32>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved space for `edges` edges.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            max_vertex: None,
        }
    }

    /// Adds an undirected edge `{u, v}` by raw ids. Self-loops are ignored.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        let hi = b.max(self.max_vertex.unwrap_or(0));
        self.max_vertex = Some(hi);
    }

    /// Adds every edge from an iterator of raw id pairs.
    pub fn extend_edges<I: IntoIterator<Item = (u32, u32)>>(&mut self, it: I) {
        for (u, v) in it {
            self.add_edge(u, v);
        }
    }

    /// Ensures the graph has at least `n` vertices even if some are isolated.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let hi = (n - 1) as u32;
        self.max_vertex = Some(self.max_vertex.map_or(hi, |m| m.max(hi)));
    }

    /// Number of (not yet deduplicated) edge records added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into an immutable [`CsrGraph`].
    ///
    /// Duplicate edges are removed; vertex count is `max id + 1` (or the
    /// value forced by [`ensure_vertices`](Self::ensure_vertices)).
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.max_vertex.map_or(0, |m| m as usize + 1);
        CsrGraph::from_sorted_dedup_edges(n, self.edges)
    }
}

/// Builds a graph directly from a slice of raw edge pairs.
///
/// Convenience for tests and fixtures.
pub fn graph_from_edges(edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(edges.len());
    b.extend_edges(edges.iter().copied());
    b.build()
}

/// Builds a graph from edges given as [`VertexId`] pairs.
pub fn graph_from_vertex_pairs(edges: &[(VertexId, VertexId)]) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(edges.len());
    b.extend_edges(edges.iter().map(|&(u, v)| (u.0, v.0)));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_drops_self_loops() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (0, 1), (3, 3), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(g.edge_between(VertexId(0), VertexId(1)).is_some());
        assert!(g.edge_between(VertexId(2), VertexId(3)).is_some());
        assert!(g.edge_between(VertexId(3), VertexId(3)).is_none());
    }

    #[test]
    fn ensure_vertices_creates_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertices(5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(VertexId(4)), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn raw_edge_count_tracks_inserts() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        assert_eq!(b.raw_edge_count(), 2); // self-loop dropped at insert
    }
}
