//! The parallel execution substrate shared by every hot path.
//!
//! The bottleneck phases of the paper — triangle enumeration, edge-support
//! computation and truss decomposition — are embarrassingly parallel over
//! edges. [`Parallelism`] makes "how work is spread across cores" a
//! first-class, explicit concept: a thread count plus three structured
//! fork-join helpers built on `std::thread::scope` (the build environment
//! is offline, so no external thread-pool crates). Every parallel algorithm
//! in the workspace takes a `Parallelism` and treats `threads = 1` as the
//! serial reference path, so parallel results can always be validated
//! against the serial oracle.
//!
//! ```
//! use ctc_graph::Parallelism;
//!
//! // Sum of squares, split across 4 workers.
//! let par = Parallelism::threads(4);
//! let partial: Vec<u64> = par.map_chunks(1000, |range| {
//!     range.map(|i| (i as u64) * (i as u64)).sum()
//! });
//! let total: u64 = partial.iter().sum();
//! assert_eq!(total, (0..1000u64).map(|i| i * i).sum());
//! assert_eq!(par.get(), 4);
//! assert!(!par.is_serial());
//! ```

use std::num::NonZeroUsize;
use std::ops::Range;

/// A thread-count policy for the workspace's parallel algorithms.
///
/// Wraps a non-zero worker count and provides deterministic, contiguous
/// chunking over index spaces. All helpers degrade to a plain in-thread
/// call when one worker suffices, so `Parallelism::serial()` adds zero
/// overhead and *is* the serial code path.
///
/// ```
/// use ctc_graph::Parallelism;
///
/// assert!(Parallelism::serial().is_serial());
/// assert_eq!(Parallelism::threads(8).get(), 8);
/// assert_eq!(Parallelism::threads(1), Parallelism::serial());
/// // 0 means "use all available cores".
/// assert!(Parallelism::threads(0).get() >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Default for Parallelism {
    /// Defaults to serial: parallelism is always an explicit opt-in.
    fn default() -> Self {
        Parallelism::serial()
    }
}

impl Parallelism {
    /// Exactly one worker: the serial reference path.
    pub fn serial() -> Self {
        Parallelism {
            threads: NonZeroUsize::MIN,
        }
    }

    /// A fixed worker count. `0` is interpreted as "all available cores"
    /// ([`Parallelism::available`]), matching the CLI's `--threads 0`.
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(threads) => Parallelism { threads },
            None => Self::available(),
        }
    }

    /// One worker per core reported by the OS (1 if detection fails).
    pub fn available() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The worker count.
    #[inline(always)]
    pub fn get(self) -> usize {
        self.threads.get()
    }

    /// `true` when this is the single-worker serial path.
    #[inline(always)]
    pub fn is_serial(self) -> bool {
        self.threads.get() == 1
    }

    /// Number of workers actually used for `len` items (never more workers
    /// than items, never zero).
    #[inline]
    fn workers_for(self, len: usize) -> usize {
        self.threads.get().min(len).max(1)
    }

    /// Splits `0..len` into at most `get()` contiguous chunks and runs `f`
    /// on each, in parallel, returning the per-chunk results **in chunk
    /// order** (so the output is independent of thread scheduling).
    ///
    /// With one worker (or one item) `f` runs inline on the caller's
    /// thread. Panics in workers propagate to the caller.
    pub fn map_chunks<R, F>(self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let workers = self.workers_for(len);
        if workers == 1 {
            return vec![f(0..len)];
        }
        let chunk = len.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|i| {
                    let lo = (i * chunk).min(len);
                    let hi = ((i + 1) * chunk).min(len);
                    let f = &f;
                    scope.spawn(move || f(lo..hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        })
    }

    /// [`map_chunks`](Self::map_chunks) with no per-chunk result.
    pub fn for_each_chunk<F>(self, len: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.map_chunks(len, f);
    }

    /// Splits `out` into at most `get()` contiguous sub-slices and runs
    /// `f(start, chunk)` on each in parallel, where `start` is the chunk's
    /// offset in `out`. Because the sub-slices are disjoint, each worker
    /// writes its region without any synchronization — the pattern behind
    /// the parallel per-edge support fill.
    pub fn fill_chunks<T, F>(self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let len = out.len();
        if len == 0 {
            return;
        }
        let workers = self.workers_for(len);
        if workers == 1 {
            f(0, out);
            return;
        }
        let chunk = len.div_ceil(workers);
        std::thread::scope(|scope| {
            for (i, piece) in out.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move || f(i * chunk, piece));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_and_default_are_one_thread() {
        assert_eq!(Parallelism::serial().get(), 1);
        assert_eq!(Parallelism::default(), Parallelism::serial());
        assert!(Parallelism::serial().is_serial());
        assert!(!Parallelism::threads(2).is_serial());
    }

    #[test]
    fn zero_means_available() {
        assert_eq!(Parallelism::threads(0), Parallelism::available());
        assert!(Parallelism::available().get() >= 1);
    }

    #[test]
    fn map_chunks_covers_range_in_order() {
        for threads in [1, 2, 3, 8] {
            let par = Parallelism::threads(threads);
            // 17 with 8 workers regresses the ceil-chunking case where a
            // trailing worker's start offset would overshoot the length.
            for len in [0usize, 1, 2, 7, 17, 100] {
                let pieces = par.map_chunks(len, |r| r.collect::<Vec<_>>());
                let flat: Vec<usize> = pieces.into_iter().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>(), "t={threads} len={len}");
            }
        }
    }

    #[test]
    fn map_chunks_never_spawns_more_workers_than_items() {
        let par = Parallelism::threads(16);
        let pieces = par.map_chunks(3, |r| r.len());
        assert_eq!(pieces.len(), 3);
        assert!(pieces.iter().all(|&l| l == 1));
    }

    #[test]
    fn fill_chunks_writes_every_slot_once() {
        for threads in [1, 2, 5] {
            let par = Parallelism::threads(threads);
            let mut out = vec![0usize; 37];
            par.fill_chunks(&mut out, |start, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = start + i;
                }
            });
            assert_eq!(out, (0..37).collect::<Vec<_>>(), "t={threads}");
        }
    }

    #[test]
    fn fill_chunks_empty_slice_is_fine() {
        let mut out: Vec<u32> = Vec::new();
        Parallelism::threads(4).fill_chunks(&mut out, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn for_each_chunk_runs_all_work() {
        let counter = AtomicUsize::new(0);
        Parallelism::threads(4).for_each_chunk(100, |r| {
            counter.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates() {
        Parallelism::threads(2).for_each_chunk(10, |r| {
            if r.contains(&9) {
                panic!("boom");
            }
        });
    }
}
