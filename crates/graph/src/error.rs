//! Error type shared across the graph substrate.

use std::fmt;

/// Errors produced while building, loading or querying graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced a vertex outside the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// An operation required a connected graph but the input was not.
    Disconnected,
    /// The query set was empty where at least one query vertex is required.
    EmptyQuery,
    /// A parse error while reading an edge-list file.
    Parse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An I/O failure, carried as a string so the error stays `Clone + Eq`.
    Io(String),
    /// A malformed binary graph image or snapshot (bad magic, truncated
    /// section, checksum mismatch, inconsistent arrays).
    Corrupt(String),
    /// A binary image or snapshot written by a newer, forward-incompatible
    /// format version. Distinct from [`GraphError::Corrupt`]: the file is
    /// intact, this build is just too old to read it.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// An edge insertion named an edge the graph already carries.
    DuplicateEdge {
        /// Smaller endpoint (canonical order).
        u: u32,
        /// Larger endpoint (canonical order).
        v: u32,
    },
    /// An edge deletion (or lookup) named an edge the graph does not carry.
    MissingEdge {
        /// Smaller endpoint (canonical order).
        u: u32,
        /// Larger endpoint (canonical order).
        v: u32,
    },
    /// An update named the same vertex as both endpoints; the graphs here
    /// are simple (no self-loops).
    SelfLoop {
        /// The repeated endpoint.
        v: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex id {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptyQuery => write!(f, "query vertex set is empty"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "io error: {msg}"),
            GraphError::Corrupt(msg) => write!(f, "corrupt graph image: {msg}"),
            GraphError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u},{v}) is already present")
            }
            GraphError::MissingEdge { u, v } => {
                write!(f, "edge ({u},{v}) is not present")
            }
            GraphError::SelfLoop { v } => {
                write!(f, "self-loop ({v},{v}) is not allowed")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 3 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3"));
        assert!(GraphError::Disconnected.to_string().contains("connected"));
        let p = GraphError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 4"));
    }

    #[test]
    fn unsupported_version_names_both_versions() {
        let e = GraphError::UnsupportedVersion {
            found: 7,
            supported: 1,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("1"));
    }

    #[test]
    fn update_rejections_name_the_edge() {
        let d = GraphError::DuplicateEdge { u: 3, v: 17 };
        assert!(d.to_string().contains("(3,17)"));
        assert!(d.to_string().contains("already"));
        let m = GraphError::MissingEdge { u: 5, v: 9 };
        assert!(m.to_string().contains("(5,9)"));
        assert!(m.to_string().contains("not present"));
        let s = GraphError::SelfLoop { v: 4 };
        assert!(s.to_string().contains("(4,4)"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
