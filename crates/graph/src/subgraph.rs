//! Induced subgraph extraction with id remapping.
//!
//! CTC search constantly narrows scope: `FindG0` yields an edge subset of
//! `G`, LCTC expands a Steiner tree into a local subgraph, and peeling
//! operates on the extracted piece. [`Subgraph`] packages the extracted
//! [`CsrGraph`] together with the mapping back to the parent's vertex ids.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::dynamic::DynGraph;
use crate::fx::{fx_map_with_capacity, FxHashMap};
use crate::ids::{EdgeId, VertexId};

/// A compact graph extracted from a parent, with both-way vertex mappings.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The extracted graph with dense local ids.
    pub graph: CsrGraph,
    /// `to_parent[local] = parent id`.
    pub to_parent: Vec<u32>,
    /// `parent id -> local id`.
    pub from_parent: FxHashMap<u32, u32>,
}

impl Subgraph {
    /// Maps a parent vertex into this subgraph, if included.
    #[inline]
    pub fn local(&self, parent: VertexId) -> Option<VertexId> {
        self.from_parent.get(&parent.0).map(|&l| VertexId(l))
    }

    /// Maps a local vertex back to the parent graph.
    #[inline]
    pub fn parent(&self, local: VertexId) -> VertexId {
        VertexId(self.to_parent[local.index()])
    }

    /// Maps a set of parent vertices to local ids; `None` if any is absent.
    pub fn locals(&self, parents: &[VertexId]) -> Option<Vec<VertexId>> {
        parents.iter().map(|&p| self.local(p)).collect()
    }

    /// Maps local vertices back to parent ids.
    pub fn parents(&self, locals: &[VertexId]) -> Vec<VertexId> {
        locals.iter().map(|&l| self.parent(l)).collect()
    }

    /// Number of vertices in the extracted graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges in the extracted graph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Extracts the subgraph of `g` induced by `vertices`.
///
/// Keeps every edge of `g` whose endpoints are both in `vertices`.
pub fn induced_subgraph(g: &CsrGraph, vertices: &[VertexId]) -> Subgraph {
    let mut from_parent: FxHashMap<u32, u32> = fx_map_with_capacity(vertices.len());
    let mut to_parent = Vec::with_capacity(vertices.len());
    for &v in vertices {
        if from_parent.insert(v.0, to_parent.len() as u32).is_none() {
            to_parent.push(v.0);
        }
    }
    let mut b = GraphBuilder::new();
    b.ensure_vertices(to_parent.len());
    for (local_u, &pu) in to_parent.iter().enumerate() {
        for &pv in g.neighbors(VertexId(pu)) {
            if pv <= pu {
                continue; // visit each edge once, from the smaller parent id
            }
            if let Some(&local_v) = from_parent.get(&pv) {
                b.add_edge(local_u as u32, local_v);
            }
        }
    }
    Subgraph {
        graph: b.build(),
        to_parent,
        from_parent,
    }
}

/// Extracts the subgraph of `g` consisting of exactly the given edges
/// (vertices are the union of their endpoints).
pub fn edge_subgraph(g: &CsrGraph, edges: &[EdgeId]) -> Subgraph {
    let mut from_parent: FxHashMap<u32, u32> = fx_map_with_capacity(edges.len());
    let mut to_parent: Vec<u32> = Vec::new();
    let local_id = |p: u32, to_parent: &mut Vec<u32>, from_parent: &mut FxHashMap<u32, u32>| {
        *from_parent.entry(p).or_insert_with(|| {
            to_parent.push(p);
            (to_parent.len() - 1) as u32
        })
    };
    let mut b = GraphBuilder::with_capacity(edges.len());
    for &e in edges {
        let (u, v) = g.edge_endpoints(e);
        let lu = local_id(u.0, &mut to_parent, &mut from_parent);
        let lv = local_id(v.0, &mut to_parent, &mut from_parent);
        b.add_edge(lu, lv);
    }
    b.ensure_vertices(to_parent.len());
    Subgraph {
        graph: b.build(),
        to_parent,
        from_parent,
    }
}

/// Builds a subgraph from explicit parent-id endpoint pairs, with
/// **canonical** local numbering: locals are assigned in ascending parent
/// id order, independent of the pairs' order of discovery.
///
/// Two callers that reach the same edge set through different routes (the
/// LCTC pipeline reaches one community through query-dependent Steiner
/// trees) therefore produce byte-identical subgraphs — which is what lets
/// the pooled peel scratch in `ctc-core` recognize a repeated community
/// and reuse its cached support table.
pub fn subgraph_from_pairs(pairs: &[(VertexId, VertexId)]) -> Subgraph {
    let mut to_parent: Vec<u32> = pairs.iter().flat_map(|&(u, v)| [u.0, v.0]).collect();
    to_parent.sort_unstable();
    to_parent.dedup();
    let mut from_parent: FxHashMap<u32, u32> = fx_map_with_capacity(to_parent.len());
    for (local, &p) in to_parent.iter().enumerate() {
        from_parent.insert(p, local as u32);
    }
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs {
        if u == v {
            continue;
        }
        let (a, b) = (from_parent[&u.0], from_parent[&v.0]);
        edges.push(if a < b { (a, b) } else { (b, a) });
    }
    // The hot caller (LCTC materialization) hands over sorted unique
    // canonical pairs, and the parent→local renumbering above is monotone,
    // so the mapped list is already sorted and deduplicated — the strictness
    // scan below then skips the `GraphBuilder` re-sort entirely.
    if !edges.windows(2).all(|w| w[0] < w[1]) {
        edges.sort_unstable();
        edges.dedup();
    }
    Subgraph {
        graph: CsrGraph::from_sorted_dedup_edges(to_parent.len(), edges),
        to_parent,
        from_parent,
    }
}

/// Materializes the alive part of a [`DynGraph`] as a standalone subgraph.
pub fn alive_subgraph(d: &DynGraph<'_>) -> Subgraph {
    let vertices = d.alive_vertex_vec();
    let mut from_parent: FxHashMap<u32, u32> = fx_map_with_capacity(vertices.len());
    let mut to_parent = Vec::with_capacity(vertices.len());
    for &v in &vertices {
        from_parent.insert(v.0, to_parent.len() as u32);
        to_parent.push(v.0);
    }
    let mut b = GraphBuilder::new();
    b.ensure_vertices(to_parent.len());
    for (e, u, v) in d.alive_edges() {
        let _ = e;
        let lu = from_parent[&u.0];
        let lv = from_parent[&v.0];
        b.add_edge(lu, lv);
    }
    Subgraph {
        graph: b.build(),
        to_parent,
        from_parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn sample() -> CsrGraph {
        // Two triangles sharing vertex 2, plus a pendant.
        graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)])
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let s = induced_subgraph(&g, &[VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(s.num_vertices(), 4);
        assert_eq!(s.num_edges(), 4); // (0,1),(1,2),(0,2),(2,3); (3,4) excluded
        let l2 = s.local(VertexId(2)).unwrap();
        assert_eq!(s.parent(l2), VertexId(2));
        assert!(s.local(VertexId(5)).is_none());
    }

    #[test]
    fn induced_dedups_input_vertices() {
        let g = sample();
        let s = induced_subgraph(&g, &[VertexId(0), VertexId(1), VertexId(0)]);
        assert_eq!(s.num_vertices(), 2);
        assert_eq!(s.num_edges(), 1);
    }

    #[test]
    fn edge_subgraph_takes_exact_edges() {
        let g = sample();
        let e01 = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let e24 = g.edge_between(VertexId(2), VertexId(4)).unwrap();
        let s = edge_subgraph(&g, &[e01, e24]);
        assert_eq!(s.num_vertices(), 4);
        assert_eq!(s.num_edges(), 2);
        // Edge (0,2) exists in parent but was not selected.
        let l0 = s.local(VertexId(0)).unwrap();
        let l2 = s.local(VertexId(2)).unwrap();
        assert!(!s.graph.has_edge(l0, l2));
    }

    #[test]
    fn alive_subgraph_reflects_deletions() {
        let g = sample();
        let mut d = DynGraph::new(&g);
        d.remove_vertex(VertexId(5));
        d.remove_edge(g.edge_between(VertexId(2), VertexId(3)).unwrap());
        let s = alive_subgraph(&d);
        assert_eq!(s.num_vertices(), 5);
        assert_eq!(s.num_edges(), 5);
        let l2 = s.local(VertexId(2)).unwrap();
        let l3 = s.local(VertexId(3)).unwrap();
        assert!(!s.graph.has_edge(l2, l3));
    }

    #[test]
    fn roundtrip_mappings() {
        let g = sample();
        let verts = [VertexId(2), VertexId(4), VertexId(5)];
        let s = induced_subgraph(&g, &verts);
        let locals = s.locals(&verts).unwrap();
        assert_eq!(s.parents(&locals), verts.to_vec());
    }
}
