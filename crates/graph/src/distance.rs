//! Distances, eccentricities, diameters and query distances (Defs. 3–4).
//!
//! Candidate communities are small, so their diameters are computed exactly
//! by all-pairs BFS. Whole-network diameters (only reported in summaries)
//! use the standard double-sweep lower bound.

use crate::ids::VertexId;
use crate::traversal::{Adjacency, BfsScratch, INF};

/// Eccentricity of `v`: the longest shortest path out of `v` ([`INF`] if the
/// active component of `v` is not the whole active vertex set — callers who
/// care about reachability should check separately).
pub fn eccentricity<A: Adjacency>(adj: &A, v: VertexId, scratch: &mut BfsScratch) -> u32 {
    let (_, far) = scratch.run(adj, v);
    far
}

/// Exact diameter of the active part of `adj` by all-pairs BFS.
///
/// Returns [`INF`] when the active vertices are disconnected, 0 for empty or
/// single-vertex graphs. Cost `O(n·m)` — intended for extracted communities.
pub fn diameter_exact<A: Adjacency>(adj: &A) -> u32 {
    let n = adj.vertex_count();
    let active: Vec<VertexId> = (0..n)
        .map(VertexId::from)
        .filter(|&v| adj.is_active(v))
        .collect();
    if active.len() <= 1 {
        return 0;
    }
    let mut scratch = BfsScratch::new(n);
    let mut diam = 0u32;
    for &v in &active {
        let (_, far) = scratch.run(adj, v);
        if scratch.reached_count() != active.len() {
            return INF;
        }
        diam = diam.max(far);
    }
    diam
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS from
/// the farthest vertex found. Cheap (`2` BFS) and usually tight on social
/// networks. Returns 0 for empty graphs.
pub fn diameter_double_sweep<A: Adjacency>(adj: &A, start: VertexId) -> u32 {
    let n = adj.vertex_count();
    if n == 0 || !adj.is_active(start) {
        return 0;
    }
    let mut scratch = BfsScratch::new(n);
    let (far, _) = scratch.run(adj, start);
    let (_, d) = scratch.run(adj, far);
    d
}

/// Vertex query distance for every vertex: `dist(v, Q) = max_{q∈Q} dist(v, q)`
/// (Def. 3). Runs `|Q|` BFS passes. Vertices unreachable from any query
/// vertex get [`INF`].
pub fn query_distances<A: Adjacency>(
    adj: &A,
    q: &[VertexId],
    scratch: &mut BfsScratch,
) -> Vec<u32> {
    let n = adj.vertex_count();
    let mut out = vec![0u32; n];
    if q.is_empty() {
        return out;
    }
    for &qv in q {
        scratch.run(adj, qv);
        for (v, d) in out.iter_mut().enumerate() {
            let dv = scratch.dist(VertexId::from(v));
            *d = (*d).max(dv);
        }
    }
    // Inactive vertices should read as unreachable.
    for (v, d) in out.iter_mut().enumerate() {
        if !adj.is_active(VertexId::from(v)) {
            *d = INF;
        }
    }
    out
}

/// Graph query distance `dist(G, Q) = max_{active v} dist(v, Q)` (Def. 3).
///
/// [`INF`] if some active vertex cannot reach some query vertex.
pub fn graph_query_distance<A: Adjacency>(
    adj: &A,
    q: &[VertexId],
    scratch: &mut BfsScratch,
) -> u32 {
    let dists = query_distances(adj, q, scratch);
    (0..adj.vertex_count())
        .filter(|&v| adj.is_active(VertexId::from(v)))
        .map(|v| dists[v])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::dynamic::DynGraph;

    #[test]
    fn path_diameter() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(diameter_exact(&g), 3);
        assert_eq!(diameter_double_sweep(&g, VertexId(1)), 3);
    }

    #[test]
    fn cycle_diameter() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(diameter_exact(&g), 2); // C5: diameter 2 (paper Ex. 2)
    }

    #[test]
    fn disconnected_diameter_is_inf() {
        let g = graph_from_edges(&[(0, 1), (2, 3)]);
        assert_eq!(diameter_exact(&g), INF);
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut s = BfsScratch::new(5);
        assert_eq!(eccentricity(&g, VertexId(2), &mut s), 2);
        assert_eq!(eccentricity(&g, VertexId(0), &mut s), 4);
    }

    #[test]
    fn query_distance_matches_paper_example() {
        // Path 0-1-2-3-4 with Q = {0, 4}: dist(2, Q) = 2, dist(0, Q) = 4.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut s = BfsScratch::new(5);
        let d = query_distances(&g, &[VertexId(0), VertexId(4)], &mut s);
        assert_eq!(d, vec![4, 3, 2, 3, 4]);
        assert_eq!(
            graph_query_distance(&g, &[VertexId(0), VertexId(4)], &mut s),
            4
        );
    }

    #[test]
    fn query_distance_respects_deletions() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut d = DynGraph::new(&g);
        d.remove_vertex(VertexId(3));
        let mut s = BfsScratch::new(4);
        let qd = query_distances(&d, &[VertexId(0)], &mut s);
        assert_eq!(qd[1], 1);
        assert_eq!(qd[3], INF, "deleted vertex must read as unreachable");
        assert_eq!(graph_query_distance(&d, &[VertexId(0)], &mut s), 1);
    }

    #[test]
    fn empty_query_is_zero() {
        let g = graph_from_edges(&[(0, 1)]);
        let mut s = BfsScratch::new(2);
        assert_eq!(query_distances(&g, &[], &mut s), vec![0, 0]);
    }

    #[test]
    fn lemma2_bounds_hold_on_sample() {
        // Lemma 2: dist(G,Q) <= diam(G) <= 2 dist(G,Q).
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut s = BfsScratch::new(5);
        let q = [VertexId(0), VertexId(2)];
        let qd = graph_query_distance(&g, &q, &mut s);
        let diam = diameter_exact(&g);
        assert!(qd <= diam);
        assert!(diam <= 2 * qd);
    }
}
