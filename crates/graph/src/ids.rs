//! Strongly-typed vertex and edge identifiers.
//!
//! Both are thin `u32` newtypes: the paper's largest network (Orkut) has
//! 3.1M vertices and 117M edges, comfortably inside `u32`, and halving the
//! index width keeps the CSR arrays cache-resident (see the perf-guide notes
//! on smaller integers).

use std::fmt;

/// Identifier of a vertex in a [`CsrGraph`](crate::CsrGraph).
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

/// Identifier of an undirected edge in a [`CsrGraph`](crate::CsrGraph).
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`. Both arcs
/// `(u,v)` and `(v,u)` of an undirected edge share one `EdgeId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// The id as a `usize`, for indexing per-vertex arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize`, for indexing per-edge arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline(always)]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    #[inline(always)]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        VertexId(v as u32)
    }
}

impl From<u32> for EdgeId {
    #[inline(always)]
    fn from(e: u32) -> Self {
        EdgeId(e)
    }
}

impl From<usize> for EdgeId {
    #[inline(always)]
    fn from(e: usize) -> Self {
        debug_assert!(e <= u32::MAX as usize);
        EdgeId(e as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(42u32);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42usize), v);
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(7u32);
        assert_eq!(e.index(), 7);
        assert_eq!(EdgeId::from(7usize), e);
        assert_eq!(format!("{e:?}"), "e7");
        assert_eq!(format!("{e}"), "7");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }
}
