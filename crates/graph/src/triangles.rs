//! Triangle enumeration and edge-support computation.
//!
//! The support of an edge `e = (u,v)` in a graph `H` is the number of
//! triangles of `H` containing `e` (Def. in §2 of the paper); k-trusses are
//! defined entirely in terms of support. Supports are computed by merging
//! the two sorted neighbor rows of each edge; triangle listing uses the
//! forward (degree-ordered) algorithm so each triangle is reported once.

use crate::csr::CsrGraph;
use crate::dynamic::DynGraph;
use crate::ids::{EdgeId, VertexId};
use crate::parallel::Parallelism;

/// Computes `sup(e)` for every edge of `g`.
///
/// Cost is `O(Σ_e (d(u) + d(v)))`, i.e. bounded by `O(m · d_max)` but far
/// lower on the skewed degree distributions of real networks. This is the
/// serial reference path; [`edge_supports_par`] spreads the same per-edge
/// merges over threads and produces an identical array.
pub fn edge_supports(g: &CsrGraph) -> Vec<u32> {
    let mut sup = vec![0u32; g.num_edges()];
    for (e, u, v) in g.edges() {
        sup[e.index()] = sorted_intersection_count(g.neighbors(u), g.neighbors(v));
    }
    sup
}

/// Computes `sup(e)` for every edge of `g`, spreading the per-edge
/// neighbor-row merges over `par` worker threads.
///
/// Each edge's support depends only on the immutable CSR rows of its
/// endpoints, so workers fill disjoint chunks of the output with no
/// synchronization and the result is byte-identical to [`edge_supports`]
/// for every thread count.
pub fn edge_supports_par(g: &CsrGraph, par: Parallelism) -> Vec<u32> {
    if par.is_serial() {
        return edge_supports(g);
    }
    let mut sup = vec![0u32; g.num_edges()];
    par.fill_chunks(&mut sup, |start, chunk| {
        for (i, s) in chunk.iter_mut().enumerate() {
            let (u, v) = g.edge_endpoints(EdgeId((start + i) as u32));
            *s = sorted_intersection_count(g.neighbors(u), g.neighbors(v));
        }
    });
    sup
}

/// Computes supports restricted to the alive part of `d`.
///
/// This is line 15 of Algorithm 2: after `FindG0` materializes the working
/// subgraph, supports within it seed the k-truss maintenance.
pub fn edge_supports_dyn(d: &DynGraph<'_>) -> Vec<u32> {
    let mut sup = Vec::new();
    edge_supports_dyn_into(d, &mut sup);
    sup
}

/// [`edge_supports_dyn`] writing into a caller-owned buffer, so pooled
/// callers (the peel scratch of `ctc-core`) recompute supports with no
/// per-call allocation once the buffer has grown.
///
/// A fully-alive overlay (the state every peel starts from) takes the
/// static CSR fast path: plain sorted-row intersection with no
/// per-element alive checks, which is what makes re-arming a pooled
/// maintainer cheap.
pub fn edge_supports_dyn_into(d: &DynGraph<'_>, sup: &mut Vec<u32>) {
    let g = d.base();
    sup.clear();
    sup.resize(g.num_edges(), 0);
    if d.num_alive_vertices() == g.num_vertices() && d.num_alive_edges() == g.num_edges() {
        for (e, u, v) in g.edges() {
            sup[e.index()] = sorted_intersection_count(g.neighbors(u), g.neighbors(v));
        }
        return;
    }
    for (e, u, v) in d.alive_edges() {
        let mut c = 0u32;
        d.for_each_common_neighbor(u, v, |_, _, _| c += 1);
        sup[e.index()] = c;
    }
}

#[inline]
fn sorted_intersection_count(a: &[u32], b: &[u32]) -> u32 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Calls `f(a, b, c)` once per triangle of `g`, with `a < b < c` in the
/// degree-then-id order used for orientation.
///
/// Forward algorithm: orient every edge from "smaller" to "larger" endpoint
/// under the (degree, id) order; each vertex keeps a growing adjacency list
/// `A(v)` of already-seen out-neighbors, and triangles appear as
/// intersections of `A(u)` and `A(v)` when edge `(u,v)` is processed.
/// Runs in `O(m^{3/2})`.
pub fn for_each_triangle<F: FnMut(VertexId, VertexId, VertexId)>(g: &CsrGraph, mut f: F) {
    let n = g.num_vertices();
    // rank[v] = position in ascending (degree, id) order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (g.degree(VertexId(v)), v));
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    // seen[x] holds the *ranks* of x's already-processed lower-rank
    // neighbors. Vertices are processed in ascending rank, so pushes arrive
    // in ascending rank order and every row stays sorted for the merge.
    let mut seen: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &s in &order {
        let s = VertexId(s);
        let rs = rank[s.index()];
        for &t in g.neighbors(s) {
            if rank[t as usize] <= rs {
                continue; // process each edge once, from the earlier endpoint
            }
            // Triangles closing (s, t): common entries of seen[s], seen[t].
            let (a, b) = (&seen[s.index()], &seen[t as usize]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        f(VertexId(order[a[i] as usize]), s, VertexId(t));
                        i += 1;
                        j += 1;
                    }
                }
            }
            seen[t as usize].push(rs);
        }
    }
}

/// Total number of triangles in `g`.
///
/// ```
/// use ctc_graph::{graph_from_edges, triangle_count};
///
/// // K4 contains one triangle per vertex triple: C(4,3) = 4.
/// let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
/// assert_eq!(triangle_count(&g), 4);
/// ```
pub fn triangle_count(g: &CsrGraph) -> u64 {
    // Sum of supports counts each triangle three times.
    edge_supports(g).iter().map(|&s| s as u64).sum::<u64>() / 3
}

/// Total number of triangles in `g`, computed over `par` worker threads.
///
/// Per-chunk support sums are reduced in chunk order, so the count equals
/// [`triangle_count`] exactly for every thread count.
pub fn triangle_count_par(g: &CsrGraph, par: Parallelism) -> u64 {
    let partial = par.map_chunks(g.num_edges(), |range| {
        range
            .map(|e| {
                let (u, v) = g.edge_endpoints(EdgeId(e as u32));
                sorted_intersection_count(g.neighbors(u), g.neighbors(v)) as u64
            })
            .sum::<u64>()
    });
    partial.into_iter().sum::<u64>() / 3
}

/// Support of a single edge `{u, v}` in `g` (`None` if not an edge).
pub fn support_of(g: &CsrGraph, u: VertexId, v: VertexId) -> Option<u32> {
    let _ = g.edge_between(u, v)?;
    Some(sorted_intersection_count(g.neighbors(u), g.neighbors(v)))
}

/// Lists the common neighbors of `u` and `v` (the apexes of triangles over
/// the edge `{u,v}`).
pub fn common_neighbors(g: &CsrGraph, u: VertexId, v: VertexId) -> Vec<VertexId> {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let (mut i, mut j) = (0usize, 0usize);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(VertexId(a[i]));
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Returns, for every edge, the list-free triangle check used in tests:
/// `sup(e)` recomputed naively by scanning all vertices. O(n·m); test-only
/// oracle.
pub fn naive_edge_supports(g: &CsrGraph) -> Vec<u32> {
    let mut sup = vec![0u32; g.num_edges()];
    for (e, u, v) in g.edges() {
        let mut c = 0;
        for w in g.vertices() {
            if w != u && w != v && g.has_edge(w, u) && g.has_edge(w, v) {
                c += 1;
            }
        }
        sup[e.index()] = c;
    }
    sup
}

/// Edge id triple of a triangle `(a, b, c)`, if all three edges exist.
pub fn triangle_edges(
    g: &CsrGraph,
    a: VertexId,
    b: VertexId,
    c: VertexId,
) -> Option<(EdgeId, EdgeId, EdgeId)> {
    Some((
        g.edge_between(a, b)?,
        g.edge_between(b, c)?,
        g.edge_between(a, c)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn k4() -> CsrGraph {
        graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn k4_supports_are_two() {
        let g = k4();
        assert!(edge_supports(&g).iter().all(|&s| s == 2));
        assert_eq!(triangle_count(&g), 4);
    }

    #[test]
    fn supports_match_naive_oracle() {
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (0, 5),
        ]);
        assert_eq!(edge_supports(&g), naive_edge_supports(&g));
    }

    #[test]
    fn dyn_supports_after_deletion() {
        let g = k4();
        let mut d = DynGraph::new(&g);
        d.remove_vertex(VertexId(3));
        let sup = edge_supports_dyn(&d);
        // Remaining triangle {0,1,2}: every alive edge has support 1.
        for (e, _, _) in d.alive_edges() {
            assert_eq!(sup[e.index()], 1);
        }
    }

    #[test]
    fn triangle_enumeration_counts_match() {
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (0, 2),
            (1, 3),
            (2, 3),
            (0, 3),
            (3, 4),
            (4, 5),
        ]);
        let mut listed = 0u64;
        for_each_triangle(&g, |a, b, c| {
            assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
            listed += 1;
        });
        assert_eq!(listed, triangle_count(&g));
    }

    #[test]
    fn triangle_free_graph() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]); // C4
        assert_eq!(triangle_count(&g), 0);
        assert!(edge_supports(&g).iter().all(|&s| s == 0));
        let mut any = false;
        for_each_triangle(&g, |_, _, _| any = true);
        assert!(!any);
    }

    #[test]
    fn support_of_and_common_neighbors() {
        let g = k4();
        assert_eq!(support_of(&g, VertexId(0), VertexId(1)), Some(2));
        assert_eq!(support_of(&g, VertexId(0), VertexId(0)), None);
        let c = common_neighbors(&g, VertexId(0), VertexId(1));
        assert_eq!(c, vec![VertexId(2), VertexId(3)]);
    }

    #[test]
    fn triangle_edges_resolves_ids() {
        let g = k4();
        let t = triangle_edges(&g, VertexId(0), VertexId(1), VertexId(2));
        assert!(t.is_some());
        let g2 = graph_from_edges(&[(0, 1), (1, 2)]);
        assert!(triangle_edges(&g2, VertexId(0), VertexId(1), VertexId(2)).is_none());
    }

    #[test]
    fn parallel_supports_match_serial() {
        let mut edges = vec![];
        // Two overlapping K4s plus a tail: mixed supports.
        for &(u, v) in &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
            (6, 7),
        ] {
            edges.push((u, v));
        }
        let g = graph_from_edges(&edges);
        let serial = edge_supports(&g);
        for threads in [1usize, 2, 3, 8] {
            let par = edge_supports_par(&g, Parallelism::threads(threads));
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(
                triangle_count_par(&g, Parallelism::threads(threads)),
                triangle_count(&g),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_supports_empty_graph() {
        let g = graph_from_edges(&[]);
        assert!(edge_supports_par(&g, Parallelism::threads(4)).is_empty());
        assert_eq!(triangle_count_par(&g, Parallelism::threads(4)), 0);
    }

    /// The forward algorithm's per-vertex `seen` rows must stay sorted for
    /// its merge step; this exercises a graph where insertion order is
    /// adversarial (hub with many spokes plus chords).
    #[test]
    fn seen_rows_sorted_star_with_chords() {
        let mut edges = vec![];
        for i in 1..=8u32 {
            edges.push((0, i));
        }
        edges.push((1, 2));
        edges.push((3, 4));
        edges.push((5, 6));
        edges.push((7, 8));
        let g = graph_from_edges(&edges);
        let mut listed = 0;
        for_each_triangle(&g, |_, _, _| listed += 1);
        assert_eq!(listed, 4);
        assert_eq!(triangle_count(&g), 4);
    }
}
