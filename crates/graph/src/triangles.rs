//! Triangle enumeration and edge-support computation.
//!
//! The support of an edge `e = (u,v)` in a graph `H` is the number of
//! triangles of `H` containing `e` (Def. in §2 of the paper); k-trusses are
//! defined entirely in terms of support. All hot entry points here route
//! through the hybrid [`BitsetAdjacency`] kernel — word-parallel AND +
//! popcount for dense rows, the classic sorted-row merge for sparse ones —
//! and every path produces answers byte-identical to the merge oracle
//! ([`naive_edge_supports`] pins that in tests and proptests).

use crate::bitset::{merge_count, BitsetAdjacency, BitsetBuffers};
use crate::csr::CsrGraph;
use crate::dynamic::DynGraph;
use crate::ids::{EdgeId, VertexId};
use crate::parallel::Parallelism;

/// Computes `sup(e)` for every edge of `g`.
///
/// Cost is `O(Σ_e (d(u) + d(v)))` worst case, but edges whose endpoints
/// both carry packed bitset rows intersect in `O(span/64)` words instead.
/// This is the serial reference path; [`edge_supports_par`] spreads the
/// same per-edge intersections over threads and produces an identical
/// array.
pub fn edge_supports(g: &CsrGraph) -> Vec<u32> {
    let adj = BitsetAdjacency::build(g);
    let mut sup = Vec::new();
    edge_supports_adj(g, &adj, &mut sup);
    sup
}

/// [`edge_supports`] against a caller-built kernel, writing into a
/// caller-owned buffer — the pooled form the per-query decomposition uses
/// so the warm path allocates nothing.
pub fn edge_supports_adj(g: &CsrGraph, adj: &BitsetAdjacency, sup: &mut Vec<u32>) {
    sup.clear();
    sup.resize(g.num_edges(), 0);
    for (e, u, v) in g.edges() {
        sup[e.index()] = adj.intersection_count(g, u, v);
    }
}

/// Computes `sup(e)` for every edge of `g`, spreading the per-edge
/// intersections over `par` worker threads.
///
/// Each edge's support depends only on the immutable CSR rows (and the
/// shared read-only bitset sidecar) of its endpoints, so workers fill
/// disjoint chunks of the output with no synchronization and the result is
/// byte-identical to [`edge_supports`] for every thread count.
pub fn edge_supports_par(g: &CsrGraph, par: Parallelism) -> Vec<u32> {
    if par.is_serial() {
        return edge_supports(g);
    }
    let adj = BitsetAdjacency::build(g);
    let mut sup = vec![0u32; g.num_edges()];
    par.fill_chunks(&mut sup, |start, chunk| {
        for (i, s) in chunk.iter_mut().enumerate() {
            let (u, v) = g.edge_endpoints(EdgeId((start + i) as u32));
            *s = adj.intersection_count(g, u, v);
        }
    });
    sup
}

/// Computes supports restricted to the alive part of `d`.
///
/// This is line 15 of Algorithm 2: after `FindG0` materializes the working
/// subgraph, supports within it seed the k-truss maintenance.
pub fn edge_supports_dyn(d: &DynGraph<'_>) -> Vec<u32> {
    let mut sup = Vec::new();
    edge_supports_dyn_into(d, &mut sup);
    sup
}

/// [`edge_supports_dyn`] writing into a caller-owned buffer.
pub fn edge_supports_dyn_into(d: &DynGraph<'_>, sup: &mut Vec<u32>) {
    let mut bufs = BitsetBuffers::default();
    edge_supports_dyn_pooled(d, sup, &mut bufs);
}

/// [`edge_supports_dyn_into`] with a pooled kernel buffer, so pooled
/// callers (the peel scratch of `ctc-core`) recompute supports with no
/// per-call allocation once the buffers have grown.
///
/// A fully-alive overlay (the state every peel starts from) takes the
/// static fast path: the bitset/merge hybrid over the plain CSR with no
/// per-element alive checks, which is what makes re-arming a pooled
/// maintainer cheap. Partial overlays fall back to the alive-checked
/// merge — bitset rows describe the *base* graph and would overcount
/// deleted neighbors.
pub fn edge_supports_dyn_pooled(d: &DynGraph<'_>, sup: &mut Vec<u32>, bufs: &mut BitsetBuffers) {
    let g = d.base();
    sup.clear();
    sup.resize(g.num_edges(), 0);
    if d.num_alive_vertices() == g.num_vertices() && d.num_alive_edges() == g.num_edges() {
        let adj =
            BitsetAdjacency::build_in(g, crate::bitset::DEFAULT_DENSE_DEGREE, std::mem::take(bufs));
        for (e, u, v) in g.edges() {
            sup[e.index()] = adj.intersection_count(g, u, v);
        }
        *bufs = adj.into_buffers();
        return;
    }
    for (e, u, v) in d.alive_edges() {
        let mut c = 0u32;
        d.for_each_common_neighbor(u, v, |_, _, _| c += 1);
        sup[e.index()] = c;
    }
}

/// Calls `f(a, b, c)` once per triangle of `g`, with `a < b < c` in
/// ascending vertex-id order.
///
/// Each triangle `{a, b, c}` is reported exactly once, discovered from its
/// lexicographically smallest edge `(a, b)` by listing common neighbors
/// `w > b` through the hybrid intersection kernel. Runs in `O(m^{3/2})`
/// like the classic forward algorithm, with the per-edge intersections
/// taking the word-parallel path wherever rows are packed.
pub fn for_each_triangle<F: FnMut(VertexId, VertexId, VertexId)>(g: &CsrGraph, mut f: F) {
    let adj = BitsetAdjacency::build(g);
    for (_, u, v) in g.edges() {
        debug_assert!(u < v, "CSR edges are canonical (u < v)");
        adj.for_each_common(g, u, v, v.0 + 1, |w, _, _| f(u, v, w));
    }
}

/// Total number of triangles in `g`.
///
/// ```
/// use ctc_graph::{graph_from_edges, triangle_count};
///
/// // K4 contains one triangle per vertex triple: C(4,3) = 4.
/// let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
/// assert_eq!(triangle_count(&g), 4);
/// ```
pub fn triangle_count(g: &CsrGraph) -> u64 {
    // Sum of supports counts each triangle three times.
    edge_supports(g).iter().map(|&s| s as u64).sum::<u64>() / 3
}

/// Total number of triangles in `g`, computed over `par` worker threads.
///
/// Per-chunk support sums are reduced in chunk order, so the count equals
/// [`triangle_count`] exactly for every thread count.
pub fn triangle_count_par(g: &CsrGraph, par: Parallelism) -> u64 {
    let adj = BitsetAdjacency::build(g);
    let partial = par.map_chunks(g.num_edges(), |range| {
        range
            .map(|e| {
                let (u, v) = g.edge_endpoints(EdgeId(e as u32));
                adj.intersection_count(g, u, v) as u64
            })
            .sum::<u64>()
    });
    partial.into_iter().sum::<u64>() / 3
}

/// Support of a single edge `{u, v}` in `g` (`None` if not an edge).
pub fn support_of(g: &CsrGraph, u: VertexId, v: VertexId) -> Option<u32> {
    let _ = g.edge_between(u, v)?;
    Some(merge_count(g.neighbors(u), g.neighbors(v)))
}

/// Lists the common neighbors of `u` and `v` (the apexes of triangles over
/// the edge `{u,v}`).
pub fn common_neighbors(g: &CsrGraph, u: VertexId, v: VertexId) -> Vec<VertexId> {
    let mut out = Vec::new();
    common_neighbors_into(g, u, v, &mut out);
    out
}

/// [`common_neighbors`] writing into a caller-owned buffer — the pooled
/// form for hot loops, so repeated apex listings reuse one allocation.
pub fn common_neighbors_into(g: &CsrGraph, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
    out.clear();
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(VertexId(a[i]));
                i += 1;
                j += 1;
            }
        }
    }
}

/// Returns, for every edge, the list-free triangle check used in tests:
/// `sup(e)` recomputed naively by scanning all vertices. O(n·m); test-only
/// oracle.
pub fn naive_edge_supports(g: &CsrGraph) -> Vec<u32> {
    let mut sup = vec![0u32; g.num_edges()];
    for (e, u, v) in g.edges() {
        let mut c = 0;
        for w in g.vertices() {
            if w != u && w != v && g.has_edge(w, u) && g.has_edge(w, v) {
                c += 1;
            }
        }
        sup[e.index()] = c;
    }
    sup
}

/// Edge id triple of a triangle `(a, b, c)`, if all three edges exist.
pub fn triangle_edges(
    g: &CsrGraph,
    a: VertexId,
    b: VertexId,
    c: VertexId,
) -> Option<(EdgeId, EdgeId, EdgeId)> {
    Some((
        g.edge_between(a, b)?,
        g.edge_between(b, c)?,
        g.edge_between(a, c)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn k4() -> CsrGraph {
        graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn k4_supports_are_two() {
        let g = k4();
        assert!(edge_supports(&g).iter().all(|&s| s == 2));
        assert_eq!(triangle_count(&g), 4);
    }

    #[test]
    fn supports_match_naive_oracle() {
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (0, 5),
        ]);
        assert_eq!(edge_supports(&g), naive_edge_supports(&g));
    }

    #[test]
    fn dyn_supports_after_deletion() {
        let g = k4();
        let mut d = DynGraph::new(&g);
        d.remove_vertex(VertexId(3));
        let sup = edge_supports_dyn(&d);
        // Remaining triangle {0,1,2}: every alive edge has support 1.
        for (e, _, _) in d.alive_edges() {
            assert_eq!(sup[e.index()], 1);
        }
    }

    #[test]
    fn triangle_enumeration_counts_match() {
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (0, 2),
            (1, 3),
            (2, 3),
            (0, 3),
            (3, 4),
            (4, 5),
        ]);
        let mut listed = 0u64;
        for_each_triangle(&g, |a, b, c| {
            assert!(a < b && b < c, "ascending-id contract");
            assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
            listed += 1;
        });
        assert_eq!(listed, triangle_count(&g));
    }

    #[test]
    fn triangle_free_graph() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]); // C4
        assert_eq!(triangle_count(&g), 0);
        assert!(edge_supports(&g).iter().all(|&s| s == 0));
        let mut any = false;
        for_each_triangle(&g, |_, _, _| any = true);
        assert!(!any);
    }

    #[test]
    fn support_of_and_common_neighbors() {
        let g = k4();
        assert_eq!(support_of(&g, VertexId(0), VertexId(1)), Some(2));
        assert_eq!(support_of(&g, VertexId(0), VertexId(0)), None);
        let c = common_neighbors(&g, VertexId(0), VertexId(1));
        assert_eq!(c, vec![VertexId(2), VertexId(3)]);
        // The pooled form reuses its buffer and clears stale contents.
        let mut buf = vec![VertexId(99)];
        common_neighbors_into(&g, VertexId(0), VertexId(1), &mut buf);
        assert_eq!(buf, vec![VertexId(2), VertexId(3)]);
    }

    #[test]
    fn triangle_edges_resolves_ids() {
        let g = k4();
        let t = triangle_edges(&g, VertexId(0), VertexId(1), VertexId(2));
        assert!(t.is_some());
        let g2 = graph_from_edges(&[(0, 1), (1, 2)]);
        assert!(triangle_edges(&g2, VertexId(0), VertexId(1), VertexId(2)).is_none());
    }

    #[test]
    fn parallel_supports_match_serial() {
        let mut edges = vec![];
        // Two overlapping K4s plus a tail: mixed supports.
        for &(u, v) in &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
            (6, 7),
        ] {
            edges.push((u, v));
        }
        let g = graph_from_edges(&edges);
        let serial = edge_supports(&g);
        for threads in [1usize, 2, 3, 8] {
            let par = edge_supports_par(&g, Parallelism::threads(threads));
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(
                triangle_count_par(&g, Parallelism::threads(threads)),
                triangle_count(&g),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_supports_empty_graph() {
        let g = graph_from_edges(&[]);
        assert!(edge_supports_par(&g, Parallelism::threads(4)).is_empty());
        assert_eq!(triangle_count_par(&g, Parallelism::threads(4)), 0);
    }

    /// Hub with many spokes plus chords — dense hub row, sparse spokes:
    /// the hybrid dispatch must agree with the count on every edge.
    #[test]
    fn seen_rows_sorted_star_with_chords() {
        let mut edges = vec![];
        for i in 1..=8u32 {
            edges.push((0, i));
        }
        edges.push((1, 2));
        edges.push((3, 4));
        edges.push((5, 6));
        edges.push((7, 8));
        let g = graph_from_edges(&edges);
        let mut listed = 0;
        for_each_triangle(&g, |_, _, _| listed += 1);
        assert_eq!(listed, 4);
        assert_eq!(triangle_count(&g), 4);
        assert_eq!(edge_supports(&g), naive_edge_supports(&g));
    }
}
