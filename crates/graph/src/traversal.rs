//! Breadth-first traversal over graphs and graph views.
//!
//! Every peeling iteration of the CTC algorithms runs `|Q|` BFS passes, so
//! the machinery here is built for reuse: a generic [`Adjacency`] trait lets
//! the same BFS run over a [`CsrGraph`], a [`DynGraph`] deletion overlay, or
//! an edge-filtered view, and [`BfsScratch`] recycles its buffers across runs
//! with epoch stamping (no `O(n)` clearing per BFS).

use crate::csr::CsrGraph;
use crate::dynamic::DynGraph;
use crate::ids::{EdgeId, VertexId};

/// Distance value for unreachable vertices.
pub const INF: u32 = u32::MAX;

/// Neighborhood access abstraction for traversals.
pub trait Adjacency {
    /// Number of vertex slots (dead vertices included).
    fn vertex_count(&self) -> usize;
    /// `true` if `v` participates in the view.
    fn is_active(&self, v: VertexId) -> bool;
    /// Calls `f` for every active neighbor of `v`.
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F);
}

impl Adjacency for CsrGraph {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn is_active(&self, _v: VertexId) -> bool {
        true
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        for &nb in self.neighbors(v) {
            f(VertexId(nb));
        }
    }
}

impl Adjacency for DynGraph<'_> {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.base().num_vertices()
    }

    #[inline]
    fn is_active(&self, v: VertexId) -> bool {
        self.is_vertex_alive(v)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        for (nb, _) in self.alive_neighbors(v) {
            f(nb);
        }
    }
}

/// A view of a [`CsrGraph`] restricted to edges accepted by a predicate.
///
/// Used by the truss-distance machinery (Def. 7): BFS over
/// `{e : τ(e) ≥ t}` is a `FilteredGraph` whose predicate consults the edge
/// trussness array.
pub struct FilteredGraph<'g, F: Fn(EdgeId) -> bool> {
    base: &'g CsrGraph,
    keep: F,
}

impl<'g, F: Fn(EdgeId) -> bool> FilteredGraph<'g, F> {
    /// Wraps `base`, keeping only edges with `keep(e) == true`.
    pub fn new(base: &'g CsrGraph, keep: F) -> Self {
        FilteredGraph { base, keep }
    }
}

impl<F: Fn(EdgeId) -> bool> Adjacency for FilteredGraph<'_, F> {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.base.num_vertices()
    }

    #[inline]
    fn is_active(&self, _v: VertexId) -> bool {
        true
    }

    #[inline]
    fn for_each_neighbor<G: FnMut(VertexId)>(&self, v: VertexId, mut f: G) {
        for (nb, e) in self.base.incident(v) {
            if (self.keep)(e) {
                f(nb);
            }
        }
    }
}

/// Reusable BFS workspace with epoch-stamped visitation.
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    stamp: Vec<u32>,
    dist: Vec<u32>,
    queue: Vec<u32>,
    epoch: u32,
}

impl BfsScratch {
    /// Creates a scratch sized for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            stamp: vec![0; n],
            dist: vec![INF; n],
            queue: Vec::with_capacity(n),
            epoch: 0,
        }
    }

    /// Grows internal buffers to hold `n` vertices.
    pub fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, INF);
        }
    }

    #[inline]
    fn begin(&mut self, n: usize) {
        self.ensure(n);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stamps from 4 billion BFS runs ago could alias.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Distance of `v` computed by the most recent BFS ([`INF`] if
    /// unreached).
    #[inline(always)]
    pub fn dist(&self, v: VertexId) -> u32 {
        if self.stamp[v.index()] == self.epoch {
            self.dist[v.index()]
        } else {
            INF
        }
    }

    /// Vertices reached by the most recent BFS, in visit order.
    pub fn reached(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.queue.iter().map(|&v| VertexId(v))
    }

    /// Number of vertices reached by the most recent BFS.
    pub fn reached_count(&self) -> usize {
        self.queue.len()
    }

    /// Runs a BFS from `src`; afterwards query distances with
    /// [`dist`](Self::dist). Returns the farthest `(vertex, distance)`
    /// reached (the source itself if isolated).
    pub fn run<A: Adjacency>(&mut self, adj: &A, src: VertexId) -> (VertexId, u32) {
        self.begin(adj.vertex_count());
        debug_assert!(adj.is_active(src), "BFS source {src} is not active");
        self.stamp[src.index()] = self.epoch;
        self.dist[src.index()] = 0;
        self.queue.push(src.0);
        let mut head = 0usize;
        let mut far = (src, 0u32);
        while head < self.queue.len() {
            let v = VertexId(self.queue[head]);
            head += 1;
            let dv = self.dist[v.index()];
            if dv > far.1 {
                far = (v, dv);
            }
            adj.for_each_neighbor(v, |nb| {
                let i = nb.index();
                if self.stamp[i] != self.epoch {
                    self.stamp[i] = self.epoch;
                    self.dist[i] = dv + 1;
                    self.queue.push(nb.0);
                }
            });
        }
        far
    }

    /// Runs a BFS bounded to `max_depth` hops from `src`.
    pub fn run_bounded<A: Adjacency>(&mut self, adj: &A, src: VertexId, max_depth: u32) {
        self.begin(adj.vertex_count());
        self.stamp[src.index()] = self.epoch;
        self.dist[src.index()] = 0;
        self.queue.push(src.0);
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = VertexId(self.queue[head]);
            head += 1;
            let dv = self.dist[v.index()];
            if dv == max_depth {
                continue;
            }
            adj.for_each_neighbor(v, |nb| {
                let i = nb.index();
                if self.stamp[i] != self.epoch {
                    self.stamp[i] = self.epoch;
                    self.dist[i] = dv + 1;
                    self.queue.push(nb.0);
                }
            });
        }
    }
}

/// Single-shot BFS returning a full distance vector ([`INF`] = unreachable).
pub fn bfs_distances<A: Adjacency>(adj: &A, src: VertexId) -> Vec<u32> {
    let mut scratch = BfsScratch::new(adj.vertex_count());
    scratch.run(adj, src);
    (0..adj.vertex_count())
        .map(|v| scratch.dist(VertexId::from(v)))
        .collect()
}

/// `true` if every vertex of `q` lies in one connected component of `adj`.
///
/// This is the `connect(Q)` predicate from Algorithms 1, 2 and 4. Returns
/// `false` for an empty `q` or if any query vertex is inactive.
pub fn query_connected<A: Adjacency>(adj: &A, q: &[VertexId], scratch: &mut BfsScratch) -> bool {
    let Some(&first) = q.first() else {
        return false;
    };
    if q.iter().any(|&v| !adj.is_active(v)) {
        return false;
    }
    scratch.run(adj, first);
    q.iter().all(|&v| scratch.dist(v) != INF)
}

/// Labels each active vertex with a component id; inactive vertices get
/// `u32::MAX`. Returns `(labels, component_count)`.
pub fn connected_components<A: Adjacency>(adj: &A) -> (Vec<u32>, usize) {
    let n = adj.vertex_count();
    let mut label = vec![u32::MAX; n];
    let mut scratch = BfsScratch::new(n);
    let mut next = 0u32;
    for v in 0..n {
        let v = VertexId::from(v);
        if !adj.is_active(v) || label[v.index()] != u32::MAX {
            continue;
        }
        scratch.run(adj, v);
        for r in scratch.reached() {
            label[r.index()] = next;
        }
        next += 1;
    }
    (label, next as usize)
}

/// `true` if all active vertices form one connected component.
pub fn is_connected<A: Adjacency>(adj: &A) -> bool {
    let n = adj.vertex_count();
    let active = (0..n).filter(|&v| adj.is_active(VertexId::from(v))).count();
    if active <= 1 {
        return true;
    }
    let first = (0..n)
        .map(VertexId::from)
        .find(|&v| adj.is_active(v))
        .expect("active > 1 implies a first active vertex");
    let mut scratch = BfsScratch::new(n);
    scratch.run(adj, first);
    scratch.reached_count() == active
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn path5() -> CsrGraph {
        graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path5();
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_reports_farthest() {
        let g = path5();
        let mut s = BfsScratch::new(5);
        let (far, dist) = s.run(&g, VertexId(2));
        assert_eq!(dist, 2);
        assert!(far == VertexId(0) || far == VertexId(4));
    }

    #[test]
    fn bfs_unreachable_is_inf() {
        let g = graph_from_edges(&[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn scratch_reuse_across_epochs() {
        let g = path5();
        let mut s = BfsScratch::new(5);
        s.run(&g, VertexId(0));
        assert_eq!(s.dist(VertexId(4)), 4);
        s.run(&g, VertexId(4));
        assert_eq!(s.dist(VertexId(0)), 4);
        assert_eq!(s.dist(VertexId(4)), 0);
    }

    #[test]
    fn bounded_bfs_stops() {
        let g = path5();
        let mut s = BfsScratch::new(5);
        s.run_bounded(&g, VertexId(0), 2);
        assert_eq!(s.dist(VertexId(2)), 2);
        assert_eq!(s.dist(VertexId(3)), INF);
    }

    #[test]
    fn query_connected_detects_split() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (3, 4)]);
        let mut s = BfsScratch::new(5);
        assert!(query_connected(&g, &[VertexId(0), VertexId(2)], &mut s));
        assert!(!query_connected(&g, &[VertexId(0), VertexId(3)], &mut s));
        assert!(!query_connected(&g, &[], &mut s));
    }

    #[test]
    fn query_connected_on_dyn_graph_respects_deletion() {
        let g = path5();
        let mut d = DynGraph::new(&g);
        let mut s = BfsScratch::new(5);
        assert!(query_connected(&d, &[VertexId(0), VertexId(4)], &mut s));
        d.remove_vertex(VertexId(2));
        assert!(!query_connected(&d, &[VertexId(0), VertexId(4)], &mut s));
        // A deleted query vertex also disconnects the query.
        assert!(!query_connected(&d, &[VertexId(2)], &mut s));
    }

    #[test]
    fn components_and_connectivity() {
        let g = graph_from_edges(&[(0, 1), (2, 3), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path5()));
    }

    #[test]
    fn filtered_graph_skips_edges() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
        let heavy = g.edge_between(VertexId(0), VertexId(2)).unwrap();
        let view = FilteredGraph::new(&g, |e| e != heavy);
        let d = bfs_distances(&view, VertexId(0));
        assert_eq!(d[2], 2, "direct edge filtered away, path via 1 remains");
    }

    #[test]
    fn single_vertex_graph_is_connected() {
        let mut b = crate::builder::GraphBuilder::new();
        b.ensure_vertices(1);
        let g = b.build();
        assert!(is_connected(&g));
    }
}
