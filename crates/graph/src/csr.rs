//! Immutable compressed-sparse-row (CSR) representation of an undirected
//! simple graph.
//!
//! Layout: per-vertex neighbor rows, each sorted by neighbor id, with a
//! parallel array mapping every directed arc to its undirected [`EdgeId`].
//! Edge endpoints are stored once, canonically ordered (`u < v`). This gives
//! `O(log d)` edge lookup without hashing, cache-friendly sequential
//! neighborhood scans, and dense per-edge side arrays for the truss engine.

use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, VertexId};

/// An immutable undirected simple graph in CSR form.
///
/// Build one from any edge list (duplicates, self-loops and either endpoint
/// order are tolerated by the builder) and query it through typed ids:
///
/// ```
/// use ctc_graph::{graph_from_edges, CsrGraph, VertexId};
///
/// let g: CsrGraph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.neighbors(VertexId(2)), &[0, 1, 3]); // rows stay sorted
/// assert_eq!(g.degree(VertexId(2)), 3);
/// assert!(g.edge_between(VertexId(0), VertexId(3)).is_none());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` is vertex `v`'s slice in `neighbors`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor rows (2m entries).
    neighbors: Vec<u32>,
    /// `arc_edge[i]` is the undirected edge id of the arc `neighbors[i]`.
    arc_edge: Vec<u32>,
    /// Canonical endpoints (`u < v`) indexed by [`EdgeId`].
    edges: Vec<(u32, u32)>,
}

impl CsrGraph {
    /// Builds from an already sorted, deduplicated, canonicalized edge list
    /// (`u < v`, ascending). Use [`GraphBuilder`](crate::GraphBuilder) for
    /// arbitrary input.
    pub(crate) fn from_sorted_dedup_edges(n: usize, edges: Vec<(u32, u32)>) -> Self {
        let m = edges.len();
        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; 2 * m];
        let mut arc_edge = vec![0u32; 2 * m];
        for (eid, &(u, v)) in edges.iter().enumerate() {
            let cu = cursor[u as usize] as usize;
            neighbors[cu] = v;
            arc_edge[cu] = eid as u32;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            neighbors[cv] = u;
            arc_edge[cv] = eid as u32;
            cursor[v as usize] += 1;
        }
        // Every row comes out sorted without a sort pass: for vertex `w`, the
        // arcs toward smaller neighbors arrive from edges `(u, w)` whose first
        // coordinate `u < w`, and the arcs toward larger neighbors from edges
        // `(w, x)` whose first coordinate is `w` — so in the globally sorted
        // scan all `u < w` arcs land first (ascending in `u`), then all
        // `x > w` arcs (ascending in `x`).
        debug_assert!((0..n).all(|v| {
            neighbors[offsets[v] as usize..offsets[v + 1] as usize]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        CsrGraph {
            offsets,
            neighbors,
            arc_edge,
            edges,
        }
    }

    /// Builds from a canonical edge list (`u < v`, strictly ascending, all
    /// endpoints `< n`), validating those preconditions — the entry point
    /// for callers that maintain a canonical edge set themselves (the
    /// dynamic truss index) and need the exact edge-id assignment
    /// [`GraphBuilder`](crate::GraphBuilder) would produce, without paying
    /// its sort/dedup pass.
    ///
    /// Violations yield [`GraphError::Corrupt`] /
    /// [`GraphError::VertexOutOfRange`], never a panic.
    ///
    /// ```
    /// use ctc_graph::{CsrGraph, VertexId};
    ///
    /// let g = CsrGraph::from_canonical_edges(4, vec![(0, 1), (0, 2), (1, 2)]).unwrap();
    /// assert_eq!(g.num_edges(), 3);
    /// assert_eq!(g.neighbors(VertexId(0)), &[1, 2]);
    /// assert!(CsrGraph::from_canonical_edges(2, vec![(1, 0)]).is_err());
    /// ```
    pub fn from_canonical_edges(n: usize, edges: Vec<(u32, u32)>) -> Result<Self> {
        let mut prev: Option<(u32, u32)> = None;
        for &(u, v) in &edges {
            if u >= v {
                return Err(GraphError::Corrupt(format!(
                    "edge ({u},{v}) not canonical (u < v)"
                )));
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if prev.is_some_and(|p| p >= (u, v)) {
                return Err(GraphError::Corrupt(format!(
                    "edge list not strictly ascending at ({u},{v})"
                )));
            }
            prev = Some((u, v));
        }
        Ok(Self::from_sorted_dedup_edges(n, edges))
    }

    /// Reassembles a graph from its four raw CSR arrays, validating every
    /// structural invariant (used by the snapshot loader, where the arrays
    /// come from an untrusted file).
    ///
    /// The arrays must be exactly what [`CsrGraph::offsets_raw`],
    /// [`CsrGraph::neighbors_raw`], [`CsrGraph::arc_edges_raw`] and
    /// [`CsrGraph::edges`] would report for a well-formed graph: offsets
    /// monotone from `0` to `2m`, rows strictly sorted, edges canonical
    /// (`u < v`) in strictly ascending order, and every arc's edge id
    /// consistent with its endpoints. Any violation yields
    /// [`GraphError::Corrupt`], never a panic — validation runs in
    /// `O(n + m)`.
    pub fn from_raw_parts(
        offsets: Vec<u32>,
        neighbors: Vec<u32>,
        arc_edge: Vec<u32>,
        edges: Vec<(u32, u32)>,
    ) -> Result<Self> {
        let corrupt = |msg: String| GraphError::Corrupt(msg);
        if offsets.is_empty() {
            return Err(corrupt("offsets array is empty".into()));
        }
        let n = offsets.len() - 1;
        let m = edges.len();
        if neighbors.len() != 2 * m || arc_edge.len() != 2 * m {
            return Err(corrupt(format!(
                "arc arrays have {} / {} entries, want 2m = {}",
                neighbors.len(),
                arc_edge.len(),
                2 * m
            )));
        }
        if offsets[0] != 0 || offsets[n] as usize != 2 * m {
            return Err(corrupt(format!(
                "offsets span {}..{}, want 0..{}",
                offsets[0],
                offsets[n],
                2 * m
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(corrupt("offsets not monotone".into()));
        }
        let mut prev: Option<(u32, u32)> = None;
        for &(u, v) in &edges {
            if u >= v {
                return Err(corrupt(format!("edge ({u},{v}) not canonical (u < v)")));
            }
            if v as usize >= n {
                return Err(corrupt(format!("edge ({u},{v}) out of range for n={n}")));
            }
            if prev.is_some_and(|p| p >= (u, v)) {
                return Err(corrupt(format!(
                    "edge list not strictly ascending at ({u},{v})"
                )));
            }
            prev = Some((u, v));
        }
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let row = &neighbors[lo..hi];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(corrupt(format!("neighbor row of {v} not strictly sorted")));
            }
            for (&nb, &ae) in row.iter().zip(&arc_edge[lo..hi]) {
                if nb as usize >= n {
                    return Err(corrupt(format!("neighbor {nb} out of range for n={n}")));
                }
                let (v, nb) = (v as u32, nb);
                let want = if v < nb { (v, nb) } else { (nb, v) };
                if edges.get(ae as usize) != Some(&want) {
                    return Err(corrupt(format!(
                        "arc ({v},{nb}) maps to edge id {ae}, which is {:?}",
                        edges.get(ae as usize)
                    )));
                }
            }
        }
        Ok(CsrGraph {
            offsets,
            neighbors,
            arc_edge,
            edges,
        })
    }

    /// The raw CSR offset array (`n + 1` entries, see the struct docs).
    #[inline]
    pub fn offsets_raw(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw concatenated neighbor rows (`2m` entries).
    #[inline]
    pub fn neighbors_raw(&self) -> &[u32] {
        &self.neighbors
    }

    /// The raw arc → undirected-edge-id array, parallel to
    /// [`CsrGraph::neighbors_raw`].
    #[inline]
    pub fn arc_edges_raw(&self) -> &[u32] {
        &self.arc_edge
    }

    /// Number of vertices `n`.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(VertexId::from(v)))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices()).map(VertexId::from)
    }

    /// Sorted neighbor row of `v` as raw ids.
    #[inline(always)]
    pub fn neighbors(&self, v: VertexId) -> &[u32] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Edge ids parallel to [`neighbors`](Self::neighbors).
    #[inline(always)]
    pub fn neighbor_edge_ids(&self, v: VertexId) -> &[u32] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.arc_edge[lo..hi]
    }

    /// Iterator of `(neighbor, edge id)` pairs for `v`.
    #[inline]
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.neighbors(v)
            .iter()
            .zip(self.neighbor_edge_ids(v).iter())
            .map(|(&nb, &e)| (VertexId(nb), EdgeId(e)))
    }

    /// Canonical endpoints (`u < v`) of edge `e`.
    #[inline(always)]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let (u, v) = self.edges[e.index()];
        (VertexId(u), VertexId(v))
    }

    /// Iterator over all edges as `(EdgeId, u, v)` with `u < v`.
    #[inline]
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::from(i), VertexId(u), VertexId(v)))
    }

    /// Looks up the edge `{u, v}`, if present, via binary search in the
    /// smaller endpoint's row.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v || u.index() >= self.num_vertices() || v.index() >= self.num_vertices() {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let row = self.neighbors(a);
        let pos = row.binary_search(&b.0).ok()?;
        Some(EdgeId(self.neighbor_edge_ids(a)[pos]))
    }

    /// `true` if `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Approximate in-memory footprint in bytes (CSR arrays only).
    ///
    /// Used by the Table 3 experiment to report "graph size" the way the
    /// paper does (megabytes of the in-memory structure).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.neighbors.len() * 4
            + self.arc_edge.len() * 4
            + self.edges.len() * 8
    }

    /// Returns the given endpoint's opposite on edge `e`.
    ///
    /// Panics in debug builds if `x` is not an endpoint of `e`.
    #[inline(always)]
    pub fn other_endpoint(&self, e: EdgeId, x: VertexId) -> VertexId {
        let (u, v) = self.edges[e.index()];
        debug_assert!(
            x.0 == u || x.0 == v,
            "vertex {x} not an endpoint of edge {e}"
        );
        if x.0 == u {
            VertexId(v)
        } else {
            VertexId(u)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn triangle() -> CsrGraph {
        graph_from_edges(&[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbor_rows_are_sorted() {
        let g = graph_from_edges(&[(0, 5), (0, 2), (0, 9), (0, 1)]);
        assert_eq!(g.neighbors(VertexId(0)), &[1, 2, 5, 9]);
        for v in g.vertices() {
            let row = g.neighbors(v);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row of {v} not sorted");
        }
    }

    #[test]
    fn arc_edge_ids_match_endpoints() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        for v in g.vertices() {
            for (nb, e) in g.incident(v) {
                let (a, b) = g.edge_endpoints(e);
                assert!(
                    (a == v && b == nb) || (a == nb && b == v),
                    "arc ({v},{nb}) mapped to edge {e} with endpoints ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn edge_between_both_directions() {
        let g = triangle();
        let e1 = g.edge_between(VertexId(0), VertexId(2));
        let e2 = g.edge_between(VertexId(2), VertexId(0));
        assert!(e1.is_some());
        assert_eq!(e1, e2);
        assert!(g.edge_between(VertexId(0), VertexId(0)).is_none());
    }

    #[test]
    fn edge_between_out_of_range_is_none() {
        let g = triangle();
        assert_eq!(g.edge_between(VertexId(0), VertexId(99)), None);
        assert_eq!(g.edge_between(VertexId(99), VertexId(0)), None);
    }

    #[test]
    fn other_endpoint_flips() {
        let g = triangle();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(g.other_endpoint(e, VertexId(0)), VertexId(1));
        assert_eq!(g.other_endpoint(e, VertexId(1)), VertexId(0));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = graph_from_edges(&[(3, 1), (2, 0)]);
        for (_, u, v) in g.edges() {
            assert!(u < v);
        }
        assert_eq!(g.edges().count(), 2);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (1, 4)]);
        let rebuilt = CsrGraph::from_raw_parts(
            g.offsets_raw().to_vec(),
            g.neighbors_raw().to_vec(),
            g.arc_edges_raw().to_vec(),
            g.edges().map(|(_, u, v)| (u.0, v.0)).collect(),
        )
        .unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn raw_parts_reject_inconsistencies() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
        let offsets = g.offsets_raw().to_vec();
        let neighbors = g.neighbors_raw().to_vec();
        let arcs = g.arc_edges_raw().to_vec();
        let edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        // Empty offsets.
        assert!(CsrGraph::from_raw_parts(vec![], vec![], vec![], vec![]).is_err());
        // Arc arrays not 2m long.
        assert!(CsrGraph::from_raw_parts(
            offsets.clone(),
            neighbors[1..].to_vec(),
            arcs.clone(),
            edges.clone()
        )
        .is_err());
        // Non-monotone offsets.
        let mut bad = offsets.clone();
        bad[1] = 6;
        assert!(
            CsrGraph::from_raw_parts(bad, neighbors.clone(), arcs.clone(), edges.clone()).is_err()
        );
        // Non-canonical edge.
        let mut bad_edges = edges.clone();
        bad_edges[0] = (1, 0);
        assert!(CsrGraph::from_raw_parts(
            offsets.clone(),
            neighbors.clone(),
            arcs.clone(),
            bad_edges
        )
        .is_err());
        // Arc pointing at the wrong edge id.
        let mut bad_arcs = arcs.clone();
        bad_arcs.swap(0, 1);
        assert!(CsrGraph::from_raw_parts(
            offsets.clone(),
            neighbors.clone(),
            bad_arcs,
            edges.clone()
        )
        .is_err());
        // Unsorted row.
        let mut bad_nbrs = neighbors.clone();
        bad_nbrs.swap(0, 1);
        assert!(CsrGraph::from_raw_parts(offsets, bad_nbrs, arcs, edges).is_err());
    }

    #[test]
    fn memory_bytes_scales_with_m() {
        let small = triangle();
        let big = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)]);
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
