//! Disjoint-set forest (union-find) with path halving + union by size.
//!
//! Used by `FindG0` (incremental query-connectivity checks while edges
//! stream in by descending trussness) and by the Steiner-tree MST stage.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// `true` if every element of `xs` shares one set (vacuously true for
    /// empty or singleton slices).
    pub fn all_connected(&mut self, xs: &[u32]) -> bool {
        match xs.split_first() {
            None => true,
            Some((&first, rest)) => {
                let r = self.find(first);
                rest.iter().all(|&x| self.find(x) == r)
            }
        }
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// A pooled union-find whose `reset` is O(1): slots are lazily
/// re-initialized to singletons via epoch stamps instead of rewriting the
/// whole parent array, so a pooled query path (FindG0) pays only for the
/// vertices it actually touches.
///
/// Same path-halving + union-by-size discipline as [`UnionFind`]; a slot
/// whose stamp is stale reads as its own singleton set.
#[derive(Clone, Debug, Default)]
pub struct EpochUnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochUnionFind {
    /// An empty structure; size it per query with [`reset`](Self::reset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes every element of `0..n` a singleton. O(1) except on first
    /// growth and on the u32 epoch wraparound.
    pub fn reset(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, self.epoch);
            self.parent.resize(n, 0);
            self.size.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    #[inline(always)]
    fn touch(&mut self, x: u32) {
        if self.stamp[x as usize] != self.epoch {
            self.stamp[x as usize] = self.epoch;
            self.parent[x as usize] = x;
            self.size[x as usize] = 1;
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        self.touch(x);
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// `true` if every element of `xs` shares one set (vacuously true for
    /// empty or singleton slices).
    pub fn all_connected(&mut self, xs: &[u32]) -> bool {
        match xs.split_first() {
            None => true,
            Some((&first, rest)) => {
                let r = self.find(first);
                rest.iter().all(|&x| self.find(x) == r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(1), 3);
    }

    #[test]
    fn all_connected_variants() {
        let mut uf = UnionFind::new(4);
        assert!(uf.all_connected(&[]));
        assert!(uf.all_connected(&[2]));
        uf.union(0, 1);
        assert!(uf.all_connected(&[0, 1]));
        assert!(!uf.all_connected(&[0, 1, 2]));
        uf.union(2, 3);
        uf.union(1, 3);
        assert!(uf.all_connected(&[0, 1, 2, 3]));
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn find_is_idempotent_after_compression() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), r);
        }
    }

    /// The epoch variant must behave exactly like a fresh UnionFind after
    /// every reset — including immediately after pooling reuse.
    #[test]
    fn epoch_reset_matches_fresh() {
        let mut euf = EpochUnionFind::new();
        for round in 0..3 {
            euf.reset(6);
            let mut uf = UnionFind::new(6);
            let pairs = [(0u32, 1u32), (2, 3), (1, 3), (4, 5)];
            for &(a, b) in &pairs {
                assert_eq!(euf.union(a, b), uf.union(a, b), "round {round}");
            }
            for x in 0..6u32 {
                for y in 0..6u32 {
                    assert_eq!(
                        euf.find(x) == euf.find(y),
                        uf.connected(x, y),
                        "round {round}: {x},{y}"
                    );
                }
            }
            assert!(euf.all_connected(&[0, 1, 2, 3]));
            assert!(!euf.all_connected(&[0, 4]));
            assert!(euf.all_connected(&[]));
        }
    }

    #[test]
    fn epoch_reset_grows() {
        let mut euf = EpochUnionFind::new();
        euf.reset(2);
        euf.union(0, 1);
        euf.reset(10);
        // Old unions must be gone, new slots must be singletons.
        assert_ne!(euf.find(0), euf.find(1));
        assert!(euf.union(8, 9));
        assert!(!euf.union(9, 8));
    }
}
