//! # ctc-graph — graph substrate for closest truss community search
//!
//! The foundation layer of the CTC workspace (a reproduction of *Approximate
//! Closest Community Search in Networks*, VLDB 2015): an immutable CSR graph
//! with strongly-typed ids, a deletion overlay for the paper's peeling
//! algorithms, BFS/traversal machinery, triangle & support computation,
//! distances/diameters, induced subgraphs, personalized PageRank, summary
//! statistics, IO, and the [`Parallelism`] substrate that spreads the hot
//! phases (triangle counting, support computation, truss decomposition in
//! `ctc-truss`) across threads.
//!
//! ## Quick tour
//!
//! ```
//! use ctc_graph::{graph_from_edges, VertexId, triangle_count, diameter_exact};
//!
//! // A 4-clique: every edge sits in 2 triangles.
//! let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
//! assert_eq!(g.num_edges(), 6);
//! assert_eq!(triangle_count(&g), 4);
//! assert_eq!(diameter_exact(&g), 1);
//! assert_eq!(g.neighbors(VertexId(0)), &[1, 2, 3]);
//! ```
//!
//! ## Parallel hot paths
//!
//! Every parallel entry point takes an explicit [`Parallelism`] and yields
//! results byte-identical to its serial counterpart, which stays around as
//! the `threads = 1` correctness oracle:
//!
//! ```
//! use ctc_graph::{graph_from_edges, edge_supports, edge_supports_par, Parallelism};
//!
//! let g = graph_from_edges(&[(0, 1), (0, 2), (1, 2), (2, 3)]);
//! assert_eq!(edge_supports_par(&g, Parallelism::threads(4)), edge_supports(&g));
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod csr;
pub mod distance;
pub mod distfield;
pub mod dynamic;
pub mod error;
pub mod fx;
pub mod ids;
pub mod io;
pub mod pagerank;
pub mod parallel;
pub mod stats;
pub mod storage;
pub mod subgraph;
pub mod traversal;
pub mod triangles;
pub mod union_find;

pub use bitset::{BitsetAdjacency, BitsetBuffers, DEFAULT_DENSE_DEGREE};
pub use builder::{graph_from_edges, graph_from_vertex_pairs, GraphBuilder};
pub use csr::CsrGraph;
pub use distance::{
    diameter_double_sweep, diameter_exact, eccentricity, graph_query_distance, query_distances,
};
pub use distfield::{DistanceField, EpochMarks};
pub use dynamic::{DynBuffers, DynGraph};
pub use error::{GraphError, Result};
pub use fx::{FxHashMap, FxHashSet};
pub use ids::{EdgeId, VertexId};
pub use pagerank::{personalized_pagerank, PageRankOptions};
pub use parallel::Parallelism;
pub use stats::{edge_density, graph_stats, vertices_by_degree_desc, GraphStats};
pub use storage::{real_env, write_durable, Fault, FaultEnv, RealEnv, StorageEnv};
pub use subgraph::{
    alive_subgraph, edge_subgraph, induced_subgraph, subgraph_from_pairs, Subgraph,
};
pub use traversal::{
    bfs_distances, connected_components, is_connected, query_connected, Adjacency, BfsScratch,
    FilteredGraph, INF,
};
pub use triangles::{
    common_neighbors, common_neighbors_into, edge_supports, edge_supports_adj, edge_supports_dyn,
    edge_supports_dyn_into, edge_supports_dyn_pooled, edge_supports_par, for_each_triangle,
    support_of, triangle_count, triangle_count_par,
};
pub use union_find::{EpochUnionFind, UnionFind};
