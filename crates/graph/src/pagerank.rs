//! Personalized PageRank (random walk with restart).
//!
//! Substrate for the QDC baseline (Wu et al. \[32\]): query-biased node
//! weights come from the stationary distribution of a random walk that
//! restarts at the query vertices. Power iteration over the CSR image; no
//! dangling-node special cases are needed because the workspace only feeds
//! it connected graphs, but isolated vertices are handled by redistributing
//! their mass to the restart set.

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// Options for [`personalized_pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankOptions {
    /// Restart probability `α` (typical 0.15).
    pub restart: f64,
    /// Convergence threshold on the L1 change per iteration.
    pub tolerance: f64,
    /// Hard cap on iterations.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            restart: 0.15,
            tolerance: 1e-9,
            max_iterations: 200,
        }
    }
}

/// Computes personalized PageRank scores with restart set `seeds`.
///
/// Returns a probability vector over all vertices (sums to 1 up to the
/// tolerance). Empty `seeds` yields the uniform restart (classic PageRank).
pub fn personalized_pagerank(g: &CsrGraph, seeds: &[VertexId], opts: PageRankOptions) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let restart_mass: Vec<f64> = if seeds.is_empty() {
        vec![1.0 / n as f64; n]
    } else {
        let per = 1.0 / seeds.len() as f64;
        let mut r = vec![0.0; n];
        for &s in seeds {
            r[s.index()] += per;
        }
        r
    };
    let mut p = restart_mass.clone();
    let mut next = vec![0.0f64; n];
    for _ in 0..opts.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for (v, &mass) in p.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let deg = g.degree(VertexId::from(v));
            if deg == 0 {
                dangling += mass;
                continue;
            }
            let share = mass / deg as f64;
            for &nb in g.neighbors(VertexId::from(v)) {
                next[nb as usize] += share;
            }
        }
        let mut delta = 0.0f64;
        for v in 0..n {
            let val = opts.restart * restart_mass[v]
                + (1.0 - opts.restart) * (next[v] + dangling * restart_mass[v]);
            delta += (val - p[v]).abs();
            p[v] = val;
        }
        if delta < opts.tolerance {
            break;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn sums_to_one() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let p = personalized_pagerank(&g, &[VertexId(0)], PageRankOptions::default());
        let total: f64 = p.iter().sum();
        assert!(approx_eq(total, 1.0, 1e-6), "total = {total}");
    }

    #[test]
    fn symmetric_graph_gives_symmetric_scores() {
        // Path 0-1-2 seeded at 1: endpoints must tie.
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        let p = personalized_pagerank(&g, &[VertexId(1)], PageRankOptions::default());
        assert!(approx_eq(p[0], p[2], 1e-9));
        assert!(p[1] > p[0], "seed should hold the most mass");
    }

    #[test]
    fn mass_concentrates_near_seed() {
        // Two triangles joined by a long path: seeding in the left triangle
        // leaves more mass there than in the right one.
        let g = graph_from_edges(&[
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (5, 7),
        ]);
        let p = personalized_pagerank(&g, &[VertexId(0)], PageRankOptions::default());
        let left: f64 = p[0] + p[1] + p[2];
        let right: f64 = p[5] + p[6] + p[7];
        assert!(left > right * 2.0, "left {left} right {right}");
    }

    #[test]
    fn uniform_restart_on_regular_graph_is_uniform() {
        // C4 is 2-regular: classic PageRank is exactly uniform.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let p = personalized_pagerank(&g, &[], PageRankOptions::default());
        for &x in &p {
            assert!(approx_eq(x, 0.25, 1e-9));
        }
    }

    #[test]
    fn isolated_vertex_keeps_total_mass() {
        let mut b = crate::builder::GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertices(3); // vertex 2 isolated
        let g = b.build();
        let p = personalized_pagerank(&g, &[VertexId(2)], PageRankOptions::default());
        let total: f64 = p.iter().sum();
        assert!(approx_eq(total, 1.0, 1e-6));
        // Everything restarts at the isolated seed; it keeps all the mass.
        assert!(p[2] > 0.99);
    }
}
