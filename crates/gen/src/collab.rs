//! Synthetic collaboration network for the Figure 11 case study.
//!
//! The paper queries four database researchers on DBLP and shows that the
//! maximal 9-truss `G0` has 73 authors (diameter 4, density 0.18) while
//! LCTC trims it to a 14-author community (diameter 2, density 0.89). This
//! module builds a network with exactly that shape: a dense senior core that
//! contains the query authors, a chain of progressively farther dense
//! research groups that are 9-trusses in their own right (the "free
//! riders"), and a periphery of sparse collaborations. Author labels are
//! synthetic ("R01 Astra" etc.) — the data is generated, not scraped.

use ctc_graph::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A collaboration network with human-readable author names.
pub struct CollabNetwork {
    /// The graph.
    pub graph: CsrGraph,
    /// `names[v]` = display name of author `v`.
    pub names: Vec<String>,
    /// The four query authors of the case study.
    pub query_authors: Vec<VertexId>,
    /// Vertices of the intended "true" community (the dense core).
    pub core: Vec<VertexId>,
}

impl CollabNetwork {
    /// Vertex id of a named author.
    pub fn author(&self, name: &str) -> Option<VertexId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(VertexId::from)
    }
}

const FIRST: [&str; 20] = [
    "Astra", "Basil", "Cleo", "Dorian", "Edda", "Felix", "Greta", "Hugo", "Iris", "Jules", "Kara",
    "Lior", "Mira", "Nils", "Odile", "Pavel", "Quinn", "Rhea", "Sven", "Talia",
];

fn name_of(i: usize) -> String {
    format!("{} R{:03}", FIRST[i % FIRST.len()], i)
}

/// Builds the case-study network.
///
/// Layout (all sizes chosen to mirror Figure 11's reported numbers):
/// * `core`: 14 authors forming `K14` minus two vertex-disjoint 5-cycles —
///   exactly 81 edges, density 0.89, trussness exactly 10 (each edge loses
///   at most 4 of its 12 triangles);
/// * a chain of eleven `K10` research groups, consecutive groups sharing
///   5 authors; a `K10` is a 10-truss, so the entire chain + core is one
///   connected 10-truss — the free riders `FindG0` drags in (the paper's
///   `G0` has 73 authors; ours has 69);
/// * a sparse periphery of collaborations (trussness ≤ 3) excluded from
///   any 10-truss.
pub fn case_study_network(seed: u64) -> CollabNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut names = Vec::new();
    let alloc = |names: &mut Vec<String>, count: usize| -> Vec<u32> {
        let start = names.len();
        for i in 0..count {
            names.push(name_of(start + i));
        }
        (start as u32..(start + count) as u32).collect()
    };

    // Core: K14 minus the 5-cycles (0,1,2,3,4) and (5,6,7,8,9). Removed
    // pairs never touch vertices 10..14, which seed the group chain.
    let core = alloc(&mut names, 14);
    let removed: Vec<(u32, u32)> = vec![
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (0, 4),
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (5, 9),
    ];
    for (i, &u) in core.iter().enumerate() {
        for &v in &core[i + 1..] {
            let pair = (u.min(v), u.max(v));
            if !removed.contains(&pair) {
                b.add_edge(u, v);
            }
        }
    }
    // Query authors: four core members.
    let query_authors = vec![
        VertexId(core[0]),
        VertexId(core[1]),
        VertexId(core[2]),
        VertexId(core[3]),
    ];

    // Chain of eleven K10 groups, each sharing 5 authors with its
    // predecessor. A K10 is a 10-truss, so the chain stays in G0.
    let mut prev_tail: Vec<u32> = core[9..14].to_vec();
    for _ in 0..11 {
        let fresh = alloc(&mut names, 5);
        let block: Vec<u32> = prev_tail
            .iter()
            .copied()
            .chain(fresh.iter().copied())
            .collect();
        for (i, &u) in block.iter().enumerate() {
            for &v in &block[i + 1..] {
                b.add_edge(u, v);
            }
        }
        prev_tail = fresh;
    }

    // Sparse periphery: 80 authors, each collaborating with 1–3 others
    // (paths and small stars — trussness ≤ 3, excluded from any 10-truss).
    let periphery = alloc(&mut names, 80);
    for (i, &u) in periphery.iter().enumerate() {
        let deg = rng.gen_range(1..=3);
        for _ in 0..deg {
            let t = if rng.gen::<f64>() < 0.5 && i > 0 {
                periphery[rng.gen_range(0..i)]
            } else {
                // Attach to a random non-core author to avoid inflating the
                // core's trussness.
                let hub = names.len() as u32 - periphery.len() as u32;
                rng.gen_range(14..hub)
            };
            if t != u {
                b.add_edge(u, t);
            }
        }
    }

    let graph = crate::util::stitch_connected(b.build(), &mut rng);
    CollabNetwork {
        graph,
        names,
        query_authors,
        core: core.into_iter().map(VertexId).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_shape() {
        let net = case_study_network(7);
        assert_eq!(net.core.len(), 14);
        assert_eq!(net.query_authors.len(), 4);
        assert_eq!(net.graph.num_vertices(), 14 + 11 * 5 + 80);
        assert!(ctc_graph::is_connected(&net.graph));
    }

    #[test]
    fn core_is_exactly_81_edges() {
        // K14 minus two 5-cycles: 91 − 10 = 81 edges (the paper's Fig. 11
        // community size).
        let net = case_study_network(7);
        let sub = ctc_graph::induced_subgraph(&net.graph, &net.core);
        assert_eq!(sub.num_edges(), 81);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let net = case_study_network(7);
        let mut sorted = net.names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), net.names.len());
        let v = net.author(&net.names[3]).unwrap();
        assert_eq!(v, VertexId(3));
        assert!(net.author("Nobody Zzz").is_none());
    }

    #[test]
    fn core_is_dense() {
        let net = case_study_network(7);
        let sub = ctc_graph::induced_subgraph(&net.graph, &net.core);
        let density = ctc_graph::edge_density(sub.num_vertices(), sub.num_edges());
        assert!(density > 0.8, "core density {density}");
        assert_eq!(
            ctc_graph::diameter_exact(&sub.graph),
            2.min(ctc_graph::diameter_exact(&sub.graph))
        );
    }

    #[test]
    fn periphery_has_low_trussness() {
        let net = case_study_network(7);
        // Vertices 14+48 .. are periphery; check a sample has degree ≤ 6.
        let start = net.graph.num_vertices() - 80;
        let mut low = 0;
        for v in start..net.graph.num_vertices() {
            if net.graph.degree(VertexId::from(v)) <= 6 {
                low += 1;
            }
        }
        assert!(
            low > 60,
            "periphery unexpectedly dense: {low}/80 low-degree"
        );
    }
}
