//! Small shared helpers for the generators.

use ctc_graph::{connected_components, CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::Rng;

/// Returns `g` with one extra edge per stray component so the result is
/// connected (the paper assumes connected inputs, §2). Each stray component
/// is attached to a random vertex of the largest component.
pub fn stitch_connected(g: CsrGraph, rng: &mut StdRng) -> CsrGraph {
    let (labels, count) = connected_components(&g);
    if count <= 1 {
        return g;
    }
    // Find the largest component.
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        if l != u32::MAX {
            sizes[l as usize] += 1;
        }
    }
    let main = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let main_vertices: Vec<u32> = labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == main)
        .map(|(v, _)| v as u32)
        .collect();
    // One representative per stray component.
    let mut seen = vec![false; count];
    let mut b = GraphBuilder::with_capacity(g.num_edges() + count);
    b.ensure_vertices(g.num_vertices());
    for (_, u, v) in g.edges() {
        b.add_edge(u.0, v.0);
    }
    for (v, &l) in labels.iter().enumerate() {
        if l != u32::MAX && l != main && !seen[l as usize] {
            seen[l as usize] = true;
            let t = main_vertices[rng.gen_range(0..main_vertices.len())];
            b.add_edge(v as u32, t);
        }
        // Isolated vertices carry label == their own component id already;
        // handled by the same branch.
    }
    b.build()
}

/// `true` if `v`'s component label equals the largest component's label —
/// exposed for tests.
pub fn in_largest_component(g: &CsrGraph, v: VertexId) -> bool {
    let (labels, count) = connected_components(g);
    if count <= 1 {
        return true;
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        if l != u32::MAX {
            sizes[l as usize] += 1;
        }
    }
    let main = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    labels[v.index()] as usize == main
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::{graph_from_edges, is_connected};
    use rand::SeedableRng;

    #[test]
    fn stitches_two_components() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (3, 4)]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = stitch_connected(g, &mut rng);
        assert!(is_connected(&s));
        assert_eq!(s.num_edges(), 4);
    }

    #[test]
    fn connected_input_unchanged() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = stitch_connected(g.clone(), &mut rng);
        assert_eq!(g, s);
    }

    #[test]
    fn stitches_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertices(4);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(5);
        let s = stitch_connected(g, &mut rng);
        assert!(is_connected(&s));
    }
}
