//! Query-workload generation — the paper's three experiment knobs (§6):
//! query size `|Q|`, degree rank `Qd`, and inter-distance `l`, plus
//! ground-truth-community sampling for the F1 experiments.

use crate::planted::GroundTruthGraph;
use ctc_graph::{vertices_by_degree_desc, BfsScratch, CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Degree-rank window: sample query vertices whose position in the
/// descending-degree order falls within `[lo, hi)` as fractions of `n`.
///
/// The paper's "degree rank X%" buckets are `DegreeRank::bucket(i)` for
/// `i ∈ 0..5` (top 0–20%, 20–40%, …, 80–100%).
#[derive(Clone, Copy, Debug)]
pub struct DegreeRank {
    /// Lower fraction (inclusive).
    pub lo: f64,
    /// Upper fraction (exclusive).
    pub hi: f64,
}

impl DegreeRank {
    /// The full range (no degree constraint).
    pub fn any() -> Self {
        DegreeRank { lo: 0.0, hi: 1.0 }
    }

    /// The `i`-th of five equal buckets (`i ∈ 0..5`).
    pub fn bucket(i: usize) -> Self {
        let i = i.min(4) as f64;
        DegreeRank {
            lo: i * 0.2,
            hi: (i + 1.0) * 0.2,
        }
    }

    /// Top-`x` fraction (e.g. `top(0.8)` = the paper's default `Qd = 80%`).
    pub fn top(x: f64) -> Self {
        DegreeRank {
            lo: 0.0,
            hi: x.clamp(0.0, 1.0),
        }
    }
}

/// Reusable query-set sampler over a fixed graph.
pub struct QueryGenerator<'g> {
    g: &'g CsrGraph,
    rng: StdRng,
    by_degree: Vec<VertexId>,
    scratch: BfsScratch,
}

impl<'g> QueryGenerator<'g> {
    /// Creates a sampler with its own deterministic RNG stream.
    pub fn new(g: &'g CsrGraph, seed: u64) -> Self {
        QueryGenerator {
            g,
            rng: StdRng::seed_from_u64(seed),
            by_degree: vertices_by_degree_desc(g),
            scratch: BfsScratch::new(g.num_vertices()),
        }
    }

    fn sample_in_rank(&mut self, rank: DegreeRank) -> Option<VertexId> {
        let n = self.by_degree.len();
        if n == 0 {
            return None;
        }
        let lo = ((rank.lo * n as f64) as usize).min(n - 1);
        let hi = ((rank.hi * n as f64) as usize).clamp(lo + 1, n);
        let v = self.by_degree[self.rng.gen_range(lo..hi)];
        (self.g.degree(v) > 0).then_some(v)
    }

    /// Samples a query set of `size` vertices from the given degree-rank
    /// window with pairwise distance ≤ `inter_distance`.
    ///
    /// Returns `None` if no qualifying set is found within the attempt
    /// budget (e.g. tiny graphs or over-constrained parameters).
    ///
    /// ```
    /// use ctc_gen::{barabasi_albert, DegreeRank, QueryGenerator};
    ///
    /// let g = barabasi_albert(200, 3, 5);
    /// let mut qg = QueryGenerator::new(&g, 42);
    /// let q = qg.sample(3, DegreeRank::top(0.8), 2).unwrap();
    /// assert_eq!(q.len(), 3);
    /// ```
    pub fn sample(
        &mut self,
        size: usize,
        rank: DegreeRank,
        inter_distance: u32,
    ) -> Option<Vec<VertexId>> {
        if size == 0 {
            return None;
        }
        'attempt: for _ in 0..64 {
            let seed = self.sample_in_rank(rank)?;
            if size == 1 {
                return Some(vec![seed]);
            }
            // Candidates within `inter_distance` of the seed, preferring the
            // far rim so the knob actually spreads the query set.
            self.scratch.run_bounded(self.g, seed, inter_distance);
            let mut cand: Vec<(u32, VertexId)> = self
                .scratch
                .reached()
                .filter(|&v| v != seed)
                .map(|v| (self.scratch.dist(v), v))
                .collect();
            if cand.len() + 1 < size {
                continue 'attempt;
            }
            // Shuffle, then stable-sort descending by distance: random
            // within a distance class, far candidates first.
            for i in (1..cand.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                cand.swap(i, j);
            }
            cand.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
            let mut chosen = vec![seed];
            for &(_, c) in &cand {
                if chosen.len() == size {
                    break;
                }
                // Enforce pairwise ≤ inter_distance against chosen members.
                self.scratch.run_bounded(self.g, c, inter_distance);
                let mut ok = true;
                for &x in &chosen {
                    if self.scratch.dist(x) == ctc_graph::INF {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    chosen.push(c);
                }
            }
            if chosen.len() == size {
                return Some(chosen);
            }
        }
        None
    }

    /// Samples a query of `size` members of one ground-truth community
    /// (uniform among communities that are large enough). Returns the query
    /// and the community index — the Exp-3 / Fig. 12 workload.
    pub fn sample_from_ground_truth(
        &mut self,
        gt: &GroundTruthGraph,
        size: usize,
    ) -> Option<(Vec<VertexId>, usize)> {
        let eligible: Vec<usize> = gt
            .communities
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len() >= size.max(3))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() || size == 0 {
            return None;
        }
        for _ in 0..32 {
            let ci = eligible[self.rng.gen_range(0..eligible.len())];
            let comm = &gt.communities[ci];
            let mut picks: Vec<VertexId> = Vec::with_capacity(size);
            let mut guard = 0;
            while picks.len() < size && guard < 50 * size {
                let v = comm[self.rng.gen_range(0..comm.len())];
                if self.g.degree(v) > 0 && !picks.contains(&v) {
                    picks.push(v);
                }
                guard += 1;
            }
            if picks.len() == size {
                return Some((picks, ci));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planted::planted_equal;
    use ctc_graph::bfs_distances;

    #[test]
    fn degree_rank_buckets_cover_unit_interval() {
        for i in 0..5 {
            let b = DegreeRank::bucket(i);
            assert!((b.hi - b.lo - 0.2).abs() < 1e-12);
        }
        assert_eq!(DegreeRank::bucket(0).lo, 0.0);
        assert_eq!(DegreeRank::bucket(4).hi, 1.0);
    }

    #[test]
    fn sampled_queries_respect_inter_distance() {
        let gt = planted_equal(10, 30, 0.5, 1.0, 21);
        let mut qg = QueryGenerator::new(&gt.graph, 7);
        for _ in 0..20 {
            let q = qg.sample(3, DegreeRank::any(), 2).expect("sampling failed");
            assert_eq!(q.len(), 3);
            for &a in &q {
                let d = bfs_distances(&gt.graph, a);
                for &b in &q {
                    assert!(
                        d[b.index()] <= 2,
                        "pair ({a},{b}) at distance {}",
                        d[b.index()]
                    );
                }
            }
        }
    }

    #[test]
    fn high_rank_bucket_yields_high_degree() {
        let gt = planted_equal(8, 40, 0.5, 1.0, 3);
        let mut qg = QueryGenerator::new(&gt.graph, 11);
        let order = vertices_by_degree_desc(&gt.graph);
        let top_floor = gt.graph.degree(order[order.len() / 5]);
        for _ in 0..10 {
            let q = qg.sample(1, DegreeRank::bucket(0), 2).unwrap();
            assert!(
                gt.graph.degree(q[0]) >= top_floor,
                "degree {} below top-bucket floor {top_floor}",
                gt.graph.degree(q[0])
            );
        }
    }

    #[test]
    fn ground_truth_sampling_stays_in_one_community() {
        let gt = planted_equal(6, 25, 0.7, 0.5, 9);
        let mut qg = QueryGenerator::new(&gt.graph, 13);
        for _ in 0..10 {
            let (q, ci) = qg.sample_from_ground_truth(&gt, 4).unwrap();
            assert_eq!(q.len(), 4);
            for &v in &q {
                assert_eq!(gt.membership[v.index()] as usize, ci);
            }
            // distinct members
            let mut s = q.clone();
            s.sort();
            s.dedup();
            assert_eq!(s.len(), 4);
        }
    }

    #[test]
    fn oversized_requests_return_none() {
        let gt = planted_equal(2, 4, 1.0, 0.0, 5);
        let mut qg = QueryGenerator::new(&gt.graph, 1);
        assert!(qg.sample_from_ground_truth(&gt, 50).is_none());
        assert!(qg.sample(0, DegreeRank::any(), 2).is_none());
    }

    #[test]
    fn deterministic_with_same_seed() {
        let gt = planted_equal(5, 20, 0.6, 1.0, 2);
        let mut a = QueryGenerator::new(&gt.graph, 99);
        let mut b = QueryGenerator::new(&gt.graph, 99);
        for _ in 0..5 {
            assert_eq!(
                a.sample(2, DegreeRank::any(), 3),
                b.sample(2, DegreeRank::any(), 3)
            );
        }
    }
}
