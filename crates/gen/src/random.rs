//! Classic random-graph generators: Erdős–Rényi, Barabási–Albert,
//! Watts–Strogatz.
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible run-to-run.

use ctc_graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform random edges.
///
/// ```
/// use ctc_gen::erdos_renyi_nm;
///
/// let g = erdos_renyi_nm(50, 120, 7);
/// assert_eq!((g.num_vertices(), g.num_edges()), (50, 120));
/// // Deterministic in the seed.
/// assert_eq!(g, erdos_renyi_nm(50, 120, 7));
/// assert_ne!(g, erdos_renyi_nm(50, 120, 8));
/// ```
pub fn erdos_renyi_nm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n * n.saturating_sub(1) / 2;
    let m = m.min(max_edges);
    let mut seen = ctc_graph::fx::fx_set_with_capacity::<(u32, u32)>(m * 2);
    let mut b = GraphBuilder::with_capacity(m);
    b.ensure_vertices(n);
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` via geometric skip sampling, `O(n + m)` expected.
pub fn erdos_renyi_np(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    let p = p.min(1.0);
    let log1m = (1.0 - p).ln();
    // Walk the upper-triangular pair space with geometric jumps.
    let (mut u, mut v) = (1usize, 0usize.wrapping_sub(1)); // v starts "before 0"
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = if p >= 1.0 {
            1
        } else {
            1 + (r.ln() / log1m) as usize
        };
        let mut vv = v.wrapping_add(skip);
        while u < n && vv >= u {
            vv -= u;
            u += 1;
        }
        if u >= n {
            break;
        }
        v = vv;
        b.add_edge(u as u32, v as u32);
    }
    b.build()
}

/// Barabási–Albert preferential attachment: start from a small clique,
/// attach each new vertex to `m_per_node` existing vertices chosen
/// proportionally to degree (repeat-endpoint sampling).
///
/// ```
/// use ctc_gen::barabasi_albert;
///
/// let g = barabasi_albert(100, 3, 11);
/// assert_eq!(g.num_vertices(), 100);
/// // Preferential attachment yields a heavy-tailed degree distribution:
/// // the busiest hub far exceeds the attachment parameter.
/// assert!(g.max_degree() > 6);
/// assert_eq!(g, barabasi_albert(100, 3, 11)); // deterministic in the seed
/// ```
pub fn barabasi_albert(n: usize, m_per_node: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m0 = (m_per_node + 1).min(n);
    let mut b = GraphBuilder::with_capacity(n * m_per_node);
    b.ensure_vertices(n);
    // Endpoint multiset: sampling uniformly from it = degree-proportional.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_per_node);
    for u in 0..m0 as u32 {
        for v in (u + 1)..m0 as u32 {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in m0..n {
        let mut targets = ctc_graph::fx::fx_set_with_capacity::<u32>(m_per_node);
        let mut guard = 0;
        while targets.len() < m_per_node && guard < 100 * m_per_node {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v as u32 {
                targets.insert(t);
            }
            guard += 1;
        }
        for &t in &targets {
            b.add_edge(v as u32, t);
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
/// each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n * k);
    b.ensure_vertices(n);
    if n < 3 {
        return b.build();
    }
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniform random non-self target.
                let mut w = rng.gen_range(0..n);
                let mut guard = 0;
                while w == u && guard < 16 {
                    w = rng.gen_range(0..n);
                    guard += 1;
                }
                if w != u {
                    b.add_edge(u as u32, w as u32);
                }
            } else {
                b.add_edge(u as u32, v as u32);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_nm_exact_edge_count() {
        let g = erdos_renyi_nm(100, 300, 7);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn er_nm_caps_at_complete_graph() {
        let g = erdos_renyi_nm(5, 1000, 7);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn er_np_density_close_to_p() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_np(n, p, 11);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn er_np_extremes() {
        assert_eq!(erdos_renyi_np(50, 0.0, 3).num_edges(), 0);
        assert_eq!(erdos_renyi_np(10, 1.0, 3).num_edges(), 45);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi_nm(50, 100, 42);
        let b = erdos_renyi_nm(50, 100, 42);
        assert_eq!(a, b);
        let c = barabasi_albert(80, 3, 9);
        let d = barabasi_albert(80, 3, 9);
        assert_eq!(c, d);
    }

    #[test]
    fn ba_has_hubs() {
        let g = barabasi_albert(500, 3, 1);
        assert!(g.num_edges() >= 3 * (500 - 4));
        // Preferential attachment should produce a hub well above average.
        let avg = 2.0 * g.num_edges() as f64 / 500.0;
        assert!(
            g.max_degree() as f64 > 3.0 * avg,
            "max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn ws_ring_without_rewiring() {
        let g = watts_strogatz(20, 2, 0.0, 5);
        assert_eq!(g.num_edges(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn ws_rewiring_keeps_edge_budget_close() {
        let g = watts_strogatz(200, 3, 0.3, 5);
        // Rewiring can only lose edges to dedup collisions.
        assert!(g.num_edges() <= 600);
        assert!(g.num_edges() > 500);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[test]
    fn tiny_inputs_do_not_panic() {
        assert_eq!(erdos_renyi_nm(0, 10, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi_nm(1, 10, 1).num_edges(), 0);
        assert_eq!(erdos_renyi_np(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi_np(1, 0.5, 1).num_edges(), 0);
        assert_eq!(barabasi_albert(1, 3, 1).num_edges(), 0);
        assert_eq!(watts_strogatz(2, 1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn ba_small_n_close_to_clique_seed() {
        // n == m_per_node + 1: just the seed clique.
        let g = barabasi_albert(4, 3, 9);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn ws_full_rewiring_stays_simple() {
        let g = watts_strogatz(50, 2, 1.0, 13);
        // All edges rewired; dedup may shrink but the graph stays simple.
        assert!(g.num_edges() <= 100);
        for v in g.vertices() {
            let row = g.neighbors(v);
            assert!(row.windows(2).all(|w| w[0] < w[1]));
            assert!(!row.contains(&v.0));
        }
    }

    #[test]
    fn er_np_no_duplicate_edges() {
        let g = erdos_renyi_np(80, 0.2, 17);
        let mut seen = std::collections::HashSet::new();
        for (_, u, v) in g.edges() {
            assert!(seen.insert((u.0, v.0)), "duplicate edge ({u},{v})");
            assert!(u < v);
        }
    }
}
