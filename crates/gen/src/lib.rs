//! # ctc-gen — synthetic networks and query workloads
//!
//! Stand-ins for the paper's datasets and query generators: classic random
//! graphs, planted-partition and LFR-style benchmarks with ground-truth
//! communities, six preset networks mirroring Table 2, the paper's three
//! query knobs (`|Q|`, degree rank, inter-distance), and the Figure 11
//! collaboration case study.
//!
//! ```
//! use ctc_gen::planted::planted_equal;
//! use ctc_gen::queries::{DegreeRank, QueryGenerator};
//!
//! let gt = planted_equal(6, 25, 0.6, 1.0, 42);
//! let mut qg = QueryGenerator::new(&gt.graph, 7);
//! let q = qg.sample(3, DegreeRank::top(0.8), 2).unwrap();
//! assert_eq!(q.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod collab;
pub mod lfr;
pub mod networks;
pub mod planted;
pub mod queries;
pub mod random;
pub mod util;

pub use collab::{case_study_network, CollabNetwork};
pub use lfr::{lfr_like, LfrConfig};
pub use networks::{all_networks, ground_truth_networks, mini_network, network_by_name, Network};
pub use planted::{planted_equal, planted_partition, GroundTruthGraph, PlantedConfig};
pub use queries::{DegreeRank, QueryGenerator};
pub use random::{barabasi_albert, erdos_renyi_nm, erdos_renyi_np, watts_strogatz};
