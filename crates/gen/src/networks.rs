//! Preset networks standing in for the paper's six SNAP datasets (Table 2).
//!
//! The originals (Facebook … Orkut, up to 117M edges) are proprietary-scale
//! downloads; per DESIGN.md §5 each preset is a seeded synthetic analogue
//! matched on the *structural knobs the algorithms care about*: community
//! structure (for F1), degree skew (for peeling cost), density (for truss
//! levels), at laptop scale. Scale factors are recorded per preset.

use crate::lfr::{lfr_like, LfrConfig};
use crate::planted::{planted_partition, GroundTruthGraph, PlantedConfig};

/// A named preset network with ground truth.
pub struct Network {
    /// Preset name (lower-case, matches the paper's dataset naming).
    pub name: &'static str,
    /// Paper-reported size of the original, for the Table 2 comparison.
    pub paper_size: (usize, usize),
    /// Scale note shown in reports.
    pub scale_note: &'static str,
    /// The generated graph + ground-truth communities.
    pub data: GroundTruthGraph,
}

/// Facebook analogue: 4K vertices / ~88K edges (the paper's Facebook is the
/// one network small enough to reproduce at 1:1 node count). Dense social
/// circles → planted partition with large, tight communities.
pub fn facebook_like() -> Network {
    let data = planted_partition(&PlantedConfig {
        community_sizes: vec![100; 40],
        background_vertices: 0,
        p_in: 0.42,
        noise_edges_per_vertex: 1.2,
        seed: 0xFACE,
    });
    Network {
        name: "facebook",
        paper_size: (4_000, 88_000),
        scale_note: "1:1 nodes, ~1:1 edges",
        data,
    }
}

/// Amazon analogue: co-purchase network — low degree, many small
/// communities. Scaled 1:10 from 335K/926K.
pub fn amazon_like() -> Network {
    let data = lfr_like(&LfrConfig {
        n: 33_000,
        avg_degree: 5.5,
        max_degree: 60,
        degree_exponent: 2.8,
        min_community: 8,
        max_community: 40,
        community_exponent: 1.6,
        mu: 0.10,
        max_event: 8,
        seed: 0xA11A,
    });
    Network {
        name: "amazon",
        paper_size: (335_000, 926_000),
        scale_note: "1:10 scale",
        data,
    }
}

/// DBLP analogue: co-authorship — cliquish communities, heavy-tail degrees.
/// Scaled 1:10 from 317K/1M.
pub fn dblp_like() -> Network {
    let data = lfr_like(&LfrConfig {
        n: 32_000,
        avg_degree: 6.6,
        max_degree: 120,
        degree_exponent: 2.5,
        min_community: 10,
        max_community: 60,
        community_exponent: 1.5,
        mu: 0.15,
        max_event: 16,
        seed: 0xDB19,
    });
    Network {
        name: "dblp",
        paper_size: (317_000, 1_000_000),
        scale_note: "1:10 scale",
        data,
    }
}

/// YouTube analogue: sparse, very skewed degrees, weak community signal.
/// Scaled ~1:22 from 1.1M/3M.
pub fn youtube_like() -> Network {
    let data = lfr_like(&LfrConfig {
        n: 50_000,
        avg_degree: 5.4,
        max_degree: 700,
        degree_exponent: 2.2,
        min_community: 10,
        max_community: 100,
        community_exponent: 1.6,
        mu: 0.35,
        max_event: 10,
        seed: 0x10BE,
    });
    Network {
        name: "youtube",
        paper_size: (1_100_000, 3_000_000),
        scale_note: "1:22 scale",
        data,
    }
}

/// LiveJournal analogue: larger, denser, strong communities. Scaled ~1:50
/// from 4M/35M.
pub fn livejournal_like() -> Network {
    let data = lfr_like(&LfrConfig {
        n: 80_000,
        avg_degree: 14.0,
        max_degree: 400,
        degree_exponent: 2.4,
        min_community: 15,
        max_community: 120,
        community_exponent: 1.5,
        mu: 0.20,
        max_event: 12,
        seed: 0x117E,
    });
    Network {
        name: "livejournal",
        paper_size: (4_000_000, 35_000_000),
        scale_note: "1:50 scale",
        data,
    }
}

/// Orkut analogue: dense, large overlapping-ish communities, high mixing —
/// the network where all methods' F1 drops in the paper. Scaled ~1:50 from
/// 3.1M/117M.
pub fn orkut_like() -> Network {
    let data = lfr_like(&LfrConfig {
        n: 62_000,
        avg_degree: 20.0,
        max_degree: 500,
        degree_exponent: 2.3,
        min_community: 30,
        max_community: 300,
        community_exponent: 1.4,
        mu: 0.45,
        max_event: 18,
        seed: 0x0BC7,
    });
    Network {
        name: "orkut",
        paper_size: (3_100_000, 117_000_000),
        scale_note: "1:50 scale",
        data,
    }
}

/// All six presets in the paper's Table 2 order.
pub fn all_networks() -> Vec<Network> {
    vec![
        facebook_like(),
        amazon_like(),
        dblp_like(),
        youtube_like(),
        livejournal_like(),
        orkut_like(),
    ]
}

/// The five ground-truth evaluation networks of Exp-3 (all but Facebook).
pub fn ground_truth_networks() -> Vec<Network> {
    vec![
        amazon_like(),
        dblp_like(),
        youtube_like(),
        livejournal_like(),
        orkut_like(),
    ]
}

/// A preset by name, if known.
///
/// ```
/// use ctc_gen::network_by_name;
///
/// let net = network_by_name("facebook").unwrap();
/// assert_eq!(net.name, "facebook");
/// assert!(net.data.graph.num_edges() > 0);
/// assert!(!net.data.communities.is_empty());
/// assert!(network_by_name("unknown").is_none());
/// ```
pub fn network_by_name(name: &str) -> Option<Network> {
    match name {
        "facebook" => Some(facebook_like()),
        "amazon" => Some(amazon_like()),
        "dblp" => Some(dblp_like()),
        "youtube" => Some(youtube_like()),
        "livejournal" => Some(livejournal_like()),
        "orkut" => Some(orkut_like()),
        _ => None,
    }
}

/// Small-scale variants for tests and quick smoke runs: same structural
/// recipe at ~1/20 the preset size.
pub fn mini_network(name: &str, seed: u64) -> Option<GroundTruthGraph> {
    match name {
        "facebook" => Some(planted_partition(&PlantedConfig {
            community_sizes: vec![40; 10],
            background_vertices: 0,
            p_in: 0.42,
            noise_edges_per_vertex: 1.2,
            seed,
        })),
        "dblp" => Some(lfr_like(&LfrConfig {
            n: 1_600,
            avg_degree: 6.6,
            max_degree: 60,
            degree_exponent: 2.5,
            min_community: 10,
            max_community: 60,
            community_exponent: 1.5,
            mu: 0.15,
            max_event: 12,
            seed,
        })),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facebook_preset_matches_paper_scale() {
        let net = facebook_like();
        let n = net.data.graph.num_vertices();
        let m = net.data.graph.num_edges();
        assert_eq!(n, 4_000);
        assert!((70_000..110_000).contains(&m), "m = {m}");
        assert!(ctc_graph::is_connected(&net.data.graph));
    }

    #[test]
    fn mini_presets_exist_and_are_connected() {
        for name in ["facebook", "dblp"] {
            let g = mini_network(name, 1).unwrap();
            assert!(g.graph.num_vertices() > 100);
            assert!(
                ctc_graph::is_connected(&g.graph),
                "{name} mini disconnected"
            );
        }
    }

    #[test]
    fn name_lookup_roundtrip() {
        assert!(network_by_name("dblp").is_some());
        assert!(network_by_name("nope").is_none());
    }
}
