//! Planted-partition (stochastic block model) graphs with ground-truth
//! communities.
//!
//! The CTC paper evaluates against SNAP networks with 5000 ground-truth
//! communities; this generator is the workspace's stand-in (see DESIGN.md
//! §5): disjoint communities with dense internal wiring (`p_in`) and sparse
//! global noise (`p_out`), which is exactly the structure the F1 experiments
//! (Fig. 12) need.

use ctc_graph::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated network together with its planted communities.
#[derive(Clone, Debug)]
pub struct GroundTruthGraph {
    /// The generated graph.
    pub graph: CsrGraph,
    /// Planted communities (disjoint vertex sets).
    pub communities: Vec<Vec<VertexId>>,
    /// `membership[v]` = community index of `v` (`u32::MAX` for background
    /// vertices outside any planted community).
    pub membership: Vec<u32>,
}

impl GroundTruthGraph {
    /// The community containing `v`, if any.
    pub fn community_of(&self, v: VertexId) -> Option<&[VertexId]> {
        let c = self.membership[v.index()];
        if c == u32::MAX {
            None
        } else {
            Some(&self.communities[c as usize])
        }
    }
}

/// Parameters for [`planted_partition`].
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Sizes of the planted communities (may differ per community).
    pub community_sizes: Vec<usize>,
    /// Extra background vertices belonging to no community.
    pub background_vertices: usize,
    /// Within-community edge probability.
    pub p_in: f64,
    /// Number of random inter-community / background "noise" edges, as a
    /// multiple of `n` (e.g. 2.0 → 2n noise edges).
    pub noise_edges_per_vertex: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            community_sizes: vec![20; 50],
            background_vertices: 0,
            p_in: 0.6,
            noise_edges_per_vertex: 1.0,
            seed: 42,
        }
    }
}

/// Generates a planted-partition graph.
pub fn planted_partition(cfg: &PlantedConfig) -> GroundTruthGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n: usize = cfg.community_sizes.iter().sum::<usize>() + cfg.background_vertices;
    let mut membership = vec![u32::MAX; n];
    let mut communities = Vec::with_capacity(cfg.community_sizes.len());
    let mut next = 0u32;
    for (ci, &size) in cfg.community_sizes.iter().enumerate() {
        let mut comm = Vec::with_capacity(size);
        for _ in 0..size {
            membership[next as usize] = ci as u32;
            comm.push(VertexId(next));
            next += 1;
        }
        communities.push(comm);
    }
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n);
    // Dense intra-community wiring.
    for comm in &communities {
        for (i, &u) in comm.iter().enumerate() {
            for &v in &comm[i + 1..] {
                if rng.gen::<f64>() < cfg.p_in {
                    b.add_edge(u.0, v.0);
                }
            }
        }
    }
    // Sparse global noise: connects communities and background vertices.
    let noise = (cfg.noise_edges_per_vertex * n as f64) as usize;
    for _ in 0..noise {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        b.add_edge(u, v);
    }
    // Keep everything reachable: chain each background vertex and each
    // community head onto a random earlier vertex.
    let comm_count: usize = cfg.community_sizes.iter().sum();
    for v in comm_count..n {
        let t = rng.gen_range(0..v as u32);
        b.add_edge(v as u32, t);
    }
    for comm in communities.iter().skip(1) {
        let head = comm[0].0;
        let t = rng.gen_range(0..communities[0].len() as u32);
        b.add_edge(head, t);
    }
    let graph = crate::util::stitch_connected(b.build(), &mut rng);
    GroundTruthGraph {
        graph,
        communities,
        membership,
    }
}

/// Convenience: `c` communities of equal `size` with default density knobs.
pub fn planted_equal(c: usize, size: usize, p_in: f64, noise: f64, seed: u64) -> GroundTruthGraph {
    planted_partition(&PlantedConfig {
        community_sizes: vec![size; c],
        background_vertices: 0,
        p_in,
        noise_edges_per_vertex: noise,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_add_up() {
        let g = planted_partition(&PlantedConfig {
            community_sizes: vec![10, 20, 30],
            background_vertices: 5,
            p_in: 0.8,
            noise_edges_per_vertex: 0.5,
            seed: 1,
        });
        assert_eq!(g.graph.num_vertices(), 65);
        assert_eq!(g.communities.len(), 3);
        assert_eq!(g.communities[2].len(), 30);
        assert_eq!(g.membership.iter().filter(|&&m| m == u32::MAX).count(), 5);
    }

    #[test]
    fn communities_are_denser_than_background() {
        let g = planted_equal(8, 25, 0.7, 0.5, 3);
        // Count intra vs inter edges.
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (_, u, v) in g.graph.edges() {
            if g.membership[u.index()] == g.membership[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 3 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn community_of_lookup() {
        let g = planted_equal(2, 5, 1.0, 0.0, 9);
        let c0 = g.community_of(VertexId(0)).unwrap();
        assert_eq!(c0.len(), 5);
        assert!(c0.contains(&VertexId(4)));
        let c1 = g.community_of(VertexId(7)).unwrap();
        assert!(c1.contains(&VertexId(5)));
    }

    #[test]
    fn p_in_one_makes_cliques() {
        let g = planted_equal(3, 6, 1.0, 0.0, 5);
        for comm in &g.communities {
            for (i, &u) in comm.iter().enumerate() {
                for &v in &comm[i + 1..] {
                    assert!(g.graph.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = planted_equal(4, 10, 0.5, 1.0, 77);
        let b = planted_equal(4, 10, 0.5, 1.0, 77);
        assert_eq!(a.graph, b.graph);
    }
}
