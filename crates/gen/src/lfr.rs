//! LFR-style benchmark graphs: power-law degrees, power-law community
//! sizes, tunable mixing.
//!
//! A pragmatic re-implementation of the Lancichinetti–Fortunato–Radicchi
//! benchmark shape: every vertex draws a target degree from a truncated
//! power law and spends a `1 − μ` fraction of it inside its community
//! (configuration-model stub matching, rejecting self-loops/duplicates) and
//! the rest on a global stub pool. Community sizes follow their own power
//! law. Gives the heavy-tailed degree + planted-community structure the
//! paper's SNAP datasets exhibit.

use crate::planted::GroundTruthGraph;
use ctc_graph::{GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`lfr_like`].
#[derive(Clone, Debug)]
pub struct LfrConfig {
    /// Number of vertices.
    pub n: usize,
    /// Mean target degree.
    pub avg_degree: f64,
    /// Maximum degree (power-law truncation).
    pub max_degree: usize,
    /// Degree power-law exponent (typical 2.5).
    pub degree_exponent: f64,
    /// Minimum community size.
    pub min_community: usize,
    /// Maximum community size.
    pub max_community: usize,
    /// Community-size power-law exponent (typical 1.5).
    pub community_exponent: f64,
    /// Mixing parameter μ: fraction of each vertex's edges leaving its
    /// community (0 = perfectly separated).
    pub mu: f64,
    /// Maximum clique-event size for intra-community wiring (larger →
    /// higher trussness cores; DBLP-like networks have large "papers").
    pub max_event: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LfrConfig {
    fn default() -> Self {
        LfrConfig {
            n: 1000,
            avg_degree: 10.0,
            max_degree: 50,
            degree_exponent: 2.5,
            min_community: 20,
            max_community: 100,
            community_exponent: 1.5,
            mu: 0.2,
            max_event: 10,
            seed: 42,
        }
    }
}

/// Draws from a truncated power law on `[lo, hi]` with exponent `gamma` via
/// inverse transform sampling.
fn power_law(rng: &mut StdRng, lo: f64, hi: f64, gamma: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    if (gamma - 1.0).abs() < 1e-9 {
        // 1/x density.
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    } else {
        let a = 1.0 - gamma;
        (lo.powf(a) + u * (hi.powf(a) - lo.powf(a))).powf(1.0 / a)
    }
}

/// Generates an LFR-style graph with ground-truth communities.
pub fn lfr_like(cfg: &LfrConfig) -> GroundTruthGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    // 1. target degrees (power law, scaled to hit avg_degree roughly).
    let mut degrees: Vec<usize> = (0..n)
        .map(|_| power_law(&mut rng, 2.0, cfg.max_degree as f64, cfg.degree_exponent) as usize)
        .collect();
    let mean: f64 = degrees.iter().sum::<usize>() as f64 / n as f64;
    let scale = cfg.avg_degree / mean.max(1.0);
    for d in &mut degrees {
        *d = ((*d as f64 * scale).round() as usize).clamp(2, cfg.max_degree);
    }
    // 2. community sizes (power law) until all vertices are covered.
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let s = power_law(
            &mut rng,
            cfg.min_community as f64,
            cfg.max_community as f64,
            cfg.community_exponent,
        ) as usize;
        let s = s
            .clamp(cfg.min_community, cfg.max_community)
            .min(n - covered);
        // Avoid a dangling undersized final community.
        let s = if n - covered - s < cfg.min_community {
            n - covered
        } else {
            s
        };
        sizes.push(s);
        covered += s;
    }
    // 3. assign vertices to communities contiguously (ids are anonymous).
    let mut membership = vec![u32::MAX; n];
    let mut communities: Vec<Vec<VertexId>> = Vec::with_capacity(sizes.len());
    let mut next = 0u32;
    for (ci, &s) in sizes.iter().enumerate() {
        let mut comm = Vec::with_capacity(s);
        for _ in 0..s {
            membership[next as usize] = ci as u32;
            comm.push(VertexId(next));
            next += 1;
        }
        communities.push(comm);
    }
    // 4. internal wiring per community via *clique events*, external stubs
    // globally. Pair stub-matching produces triangle-poor communities whose
    // trussness barely exceeds the background's; real collaboration and
    // co-purchase communities are cliquish (a paper/basket cliques its
    // members). Each event cliques 3–5 members sampled ∝ internal degree
    // budget; an event of size s adds s−1 neighbors per member, so the stub
    // pool is scaled down by the mean (s−1) ≈ 3 to hit the degree targets.
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n);
    let mut external_stubs: Vec<u32> = Vec::new();
    for comm in &communities {
        let max_event = (comm.len() * 4 / 5).clamp(3, cfg.max_event.max(3));
        // Expected event size for the truncated s^-2 law on [3, max_event]:
        // E[s] = ln(b/a) / (1/a − 1/b); each member of an event gains
        // E[s] − 1 neighbors per stub, so divide the stub budget by it.
        let (a, bb) = (3.0f64, max_event as f64);
        let mean_s = if bb <= a + 0.5 {
            a
        } else {
            (bb / a).ln() / (1.0 / a - 1.0 / bb)
        };
        let divisor = (mean_s - 1.0).max(1.0);
        let mut stubs: Vec<u32> = Vec::new();
        for &v in comm {
            let d = degrees[v.index()];
            let internal = (((1.0 - cfg.mu) * d as f64).round() as usize).min(comm.len() - 1);
            for _ in 0..((internal as f64 / divisor).ceil() as usize) {
                stubs.push(v.0);
            }
            for _ in internal..d {
                external_stubs.push(v.0);
            }
        }
        shuffle(&mut rng, &mut stubs);
        let mut i = 0usize;
        while i < stubs.len() {
            // Power-law event sizes: mostly 3–5 member cliques, occasional
            // large "many-author paper" events that create high-truss cores.
            let s = (power_law(&mut rng, 3.0, max_event as f64, 2.0) as usize)
                .clamp(3, max_event)
                .min(stubs.len() - i);
            let mut members: Vec<u32> = stubs[i..i + s].to_vec();
            members.sort_unstable();
            members.dedup();
            for (a, &u) in members.iter().enumerate() {
                for &v in &members[a + 1..] {
                    b.add_edge(u, v);
                }
            }
            i += s;
        }
    }
    shuffle(&mut rng, &mut external_stubs);
    for pair in external_stubs.chunks_exact(2) {
        b.add_edge(pair[0], pair[1]);
    }
    // 5. connectivity stitch: attach every community to the first one, then
    // absorb any leftover stray components (stub matching can drop edges).
    for comm in communities.iter().skip(1) {
        let u = comm[rng.gen_range(0..comm.len())];
        let t = communities[0][rng.gen_range(0..communities[0].len())];
        b.add_edge(u.0, t.0);
    }
    let graph = crate::util::stitch_connected(b.build(), &mut rng);
    GroundTruthGraph {
        graph,
        communities,
        membership,
    }
}

fn shuffle(rng: &mut StdRng, xs: &mut [u32]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_vertices() {
        let g = lfr_like(&LfrConfig {
            n: 500,
            ..Default::default()
        });
        assert_eq!(g.graph.num_vertices(), 500);
        assert!(g.membership.iter().all(|&m| m != u32::MAX));
        let total: usize = g.communities.iter().map(|c| c.len()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn community_sizes_respect_bounds() {
        let cfg = LfrConfig {
            n: 2000,
            min_community: 15,
            max_community: 60,
            ..Default::default()
        };
        let g = lfr_like(&cfg);
        for c in &g.communities {
            assert!(
                c.len() >= cfg.min_community,
                "undersized community {}",
                c.len()
            );
            // The final merge step can exceed max by < min_community.
            assert!(c.len() <= cfg.max_community + cfg.min_community);
        }
    }

    #[test]
    fn low_mu_keeps_edges_internal() {
        let g = lfr_like(&LfrConfig {
            n: 800,
            mu: 0.1,
            seed: 5,
            ..Default::default()
        });
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (_, u, v) in g.graph.edges() {
            if g.membership[u.index()] == g.membership[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        let frac = inter as f64 / (intra + inter) as f64;
        assert!(frac < 0.3, "external fraction {frac}");
    }

    #[test]
    fn high_mu_mixes_more_than_low_mu() {
        let lo = lfr_like(&LfrConfig {
            n: 800,
            mu: 0.05,
            seed: 6,
            ..Default::default()
        });
        let hi = lfr_like(&LfrConfig {
            n: 800,
            mu: 0.5,
            seed: 6,
            ..Default::default()
        });
        let external_frac = |g: &GroundTruthGraph| {
            let mut inter = 0usize;
            for (_, u, v) in g.graph.edges() {
                if g.membership[u.index()] != g.membership[v.index()] {
                    inter += 1;
                }
            }
            inter as f64 / g.graph.num_edges() as f64
        };
        assert!(external_frac(&hi) > external_frac(&lo));
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = lfr_like(&LfrConfig {
            n: 2000,
            avg_degree: 8.0,
            max_degree: 80,
            ..Default::default()
        });
        let avg = 2.0 * g.graph.num_edges() as f64 / 2000.0;
        assert!(g.graph.max_degree() as f64 > 2.5 * avg);
        assert!(avg > 3.0, "avg degree collapsed: {avg}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = lfr_like(&LfrConfig {
            n: 300,
            seed: 123,
            ..Default::default()
        });
        let b = lfr_like(&LfrConfig {
            n: 300,
            seed: 123,
            ..Default::default()
        });
        assert_eq!(a.graph, b.graph);
    }
}
