//! Property tests on substrate invariants: distances, connectivity,
//! serialization, Steiner trees, PageRank.

use ctc_core::{steiner_tree, SteinerMode};
use ctc_graph::{
    bfs_distances, connected_components, diameter_double_sweep, diameter_exact, graph_from_edges,
    personalized_pagerank, PageRankOptions, UnionFind, VertexId, INF,
};
use ctc_truss::TrussIndex;
use proptest::prelude::*;

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..16, 0u32..16), 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn bfs_satisfies_triangle_inequality(edges in arb_edges(), s in 0u32..16, t in 0u32..16) {
        let g = graph_from_edges(&edges);
        let n = g.num_vertices() as u32;
        if n == 0 {
            return Ok(());
        }
        let (s, t) = (VertexId(s % n), VertexId(t % n));
        let ds = bfs_distances(&g, s);
        let dt = bfs_distances(&g, t);
        let dst = ds[t.index()];
        for v in 0..n as usize {
            if ds[v] != INF && dt[v] != INF {
                prop_assert!(dst != INF);
                prop_assert!(dst as u64 <= ds[v] as u64 + dt[v] as u64);
            }
        }
    }

    #[test]
    fn double_sweep_lower_bounds_exact_diameter(edges in arb_edges()) {
        let g = graph_from_edges(&edges);
        if g.num_vertices() == 0 || !ctc_graph::is_connected(&g) {
            return Ok(());
        }
        let exact = diameter_exact(&g);
        let sweep = diameter_double_sweep(&g, VertexId(0));
        prop_assert!(sweep <= exact);
        // Double sweep is exact on trees and usually tight; it is always a
        // valid eccentricity, so also ≥ exact/2.
        prop_assert!(sweep as u64 * 2 >= exact as u64);
    }

    #[test]
    fn union_find_matches_bfs_components(edges in arb_edges()) {
        let g = graph_from_edges(&edges);
        let n = g.num_vertices();
        let mut uf = UnionFind::new(n);
        for (_, u, v) in g.edges() {
            uf.union(u.0, v.0);
        }
        let (labels, count) = connected_components(&g);
        prop_assert_eq!(uf.component_count(), count);
        for u in 0..n {
            for v in (u + 1)..n {
                prop_assert_eq!(
                    uf.connected(u as u32, v as u32),
                    labels[u] == labels[v]
                );
            }
        }
    }

    #[test]
    fn edge_list_roundtrip(edges in arb_edges()) {
        let g = graph_from_edges(&edges);
        let mut buf = Vec::new();
        ctc_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = ctc_graph::io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        // Binary image preserves ids exactly.
        let img = ctc_graph::io::to_bytes(&g);
        let g3 = ctc_graph::io::from_bytes(&img).unwrap();
        prop_assert_eq!(&g, &g3);
    }

    #[test]
    fn pagerank_is_a_distribution(edges in arb_edges(), seed in 0u32..16) {
        let g = graph_from_edges(&edges);
        let n = g.num_vertices() as u32;
        if n == 0 {
            return Ok(());
        }
        let p = personalized_pagerank(&g, &[VertexId(seed % n)], PageRankOptions::default());
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total = {}", total);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn steiner_tree_spans_query_acyclically(
        edges in arb_edges(),
        q_raw in proptest::collection::vec(0u32..16, 1..5),
        gamma in 0.0f64..6.0,
    ) {
        let g = graph_from_edges(&edges);
        let n = g.num_vertices() as u32;
        if n == 0 {
            return Ok(());
        }
        let mut q: Vec<VertexId> = q_raw.iter().map(|&v| VertexId(v % n)).collect();
        q.sort();
        q.dedup();
        let idx = TrussIndex::build(&g);
        for mode in [SteinerMode::PathMinExact, SteinerMode::EdgeAdditive] {
            match steiner_tree(&g, &idx, &q, gamma, mode) {
                None => {
                    // Legitimate only if the query is not mutually reachable
                    // (or some query vertex is isolated with |q| > 1).
                    if q.len() > 1 {
                        let d = bfs_distances(&g, q[0]);
                        prop_assert!(
                            q.iter().any(|&v| d[v.index()] == INF),
                            "{mode:?} failed on a reachable query"
                        );
                    }
                }
                Some(t) => {
                    // Tree: |E| = |V| − 1, spans Q, connected.
                    prop_assert_eq!(t.edges.len() + 1, t.vertices.len());
                    let mut uf = UnionFind::new(g.num_vertices());
                    for &e in &t.edges {
                        let (u, v) = g.edge_endpoints(e);
                        prop_assert!(uf.union(u.0, v.0), "cycle in Steiner tree");
                    }
                    let q_ids: Vec<u32> = q.iter().map(|v| v.0).collect();
                    prop_assert!(uf.all_connected(&q_ids));
                    // kt is the min edge trussness of the tree.
                    if !t.edges.is_empty() {
                        let kt = t.edges.iter().map(|&e| idx.edge_truss(e)).min().unwrap();
                        prop_assert_eq!(kt, t.min_truss);
                    }
                }
            }
        }
    }
}
