//! Cross-module consistency: the truss engine's fast paths must agree with
//! naive recomputation, and maintenance must agree with from-scratch
//! decomposition after deletions.

use ctc_graph::{graph_from_edges, DynGraph, EdgeId, VertexId};
use ctc_truss::{
    find_g0, find_ktruss_containing, naive_truss_decomposition, truss_decomposition, TrussIndex,
    TrussMaintainer,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..14, 0u32..14), 4..56)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn decomposition_matches_naive(edges in arb_graph()) {
        let g = graph_from_edges(&edges);
        let fast = truss_decomposition(&g);
        let slow = naive_truss_decomposition(&g);
        prop_assert_eq!(&fast.edge_truss, &slow.edge_truss);
        prop_assert_eq!(fast.max_truss, slow.max_truss);
    }

    #[test]
    fn index_rows_are_consistent(edges in arb_graph()) {
        let g = graph_from_edges(&edges);
        let idx = TrussIndex::build(&g);
        let d = truss_decomposition(&g);
        for (e, u, v) in g.edges() {
            prop_assert_eq!(idx.edge_truss(e), d.truss(e));
            prop_assert_eq!(idx.truss_of_pair(u, v), Some(d.truss(e)));
        }
        for v in g.vertices() {
            prop_assert_eq!(idx.vertex_truss(v), d.vertex_truss(&g, v));
            let (_, row_edges) = idx.sorted_row(v);
            let ts: Vec<u32> = row_edges.iter().map(|&e| idx.edge_truss(EdgeId(e))).collect();
            prop_assert!(ts.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn maintenance_equals_fresh_decomposition(
        edges in arb_graph(),
        victims in proptest::collection::vec(0u32..14, 1..4),
        k in 3u32..6,
    ) {
        let g = graph_from_edges(&edges);
        if g.num_vertices() == 0 {
            return Ok(());
        }
        // Incremental: enforce level k, delete victims, cascade.
        let mut live = DynGraph::new(&g);
        // Start from the maximal k-truss at level k.
        let d0 = truss_decomposition(&g);
        let low: Vec<EdgeId> = g
            .edges()
            .filter(|&(e, _, _)| d0.truss(e) < k)
            .map(|(e, _, _)| e)
            .collect();
        let mut m = TrussMaintainer::new(&live, k);
        m.delete_edges(&mut live, &low);
        let vs: Vec<VertexId> = victims
            .iter()
            .map(|&v| VertexId(v % g.num_vertices() as u32))
            .collect();
        m.delete_vertices(&mut live, &vs);
        m.check_invariants(&live).map_err(TestCaseError::fail)?;

        // From scratch: remove victims from G, decompose, keep τ ≥ k edges.
        let keep: Vec<VertexId> = g.vertices().filter(|v| !vs.contains(v)).collect();
        let minus = ctc_graph::induced_subgraph(&g, &keep);
        let d1 = truss_decomposition(&minus.graph);
        let fresh: usize = minus
            .graph
            .edges()
            .filter(|&(e, _, _)| d1.truss(e) >= k)
            .count();
        prop_assert_eq!(live.num_alive_edges(), fresh,
            "incremental maintenance diverged from fresh decomposition");
    }

    #[test]
    fn find_g0_agrees_with_filtered_search(
        edges in arb_graph(),
        q_raw in proptest::collection::vec(0u32..14, 1..4),
    ) {
        let g = graph_from_edges(&edges);
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let mut q: Vec<VertexId> = q_raw
            .iter()
            .map(|&v| VertexId(v % g.num_vertices() as u32))
            .collect();
        q.sort();
        q.dedup();
        let idx = TrussIndex::build(&g);
        match find_g0(&g, &idx, &q) {
            Err(_) => {}
            Ok(g0) => {
                // Same k via the filtered construction.
                let fixed = find_ktruss_containing(&g, &idx, &q, g0.k)
                    .expect("level k must be feasible");
                let mut a = g0.edges.clone();
                let mut b = fixed.edges;
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
                // No higher level is feasible.
                prop_assert!(find_ktruss_containing(&g, &idx, &q, g0.k + 1).is_none());
            }
        }
    }
}

#[test]
fn searchers_agree_with_find_g0_on_planted_graphs() {
    // Basic, BulkDelete and LCTC must all return a community that (a)
    // contains the query and (b) certifies the same trussness k that
    // FindG0 reports for that query — peeling only shrinks G0, never its
    // trussness level, and LCTC's expansion stops at the same global bound.
    use ctc_core::{CtcConfig, CtcSearcher};
    use ctc_gen::planted_equal;

    let cfg = CtcConfig::default();
    let mut checked = 0;
    for seed in 0..6u64 {
        let gt = planted_equal(4, 16, 0.6, 1.0, seed);
        let g = &gt.graph;
        let searcher = CtcSearcher::new(g);
        let mut qg = ctc_gen::QueryGenerator::new(g, seed ^ 0xc0ffee);
        for qsize in [1usize, 2, 3] {
            let Some((q, _)) = qg.sample_from_ground_truth(&gt, qsize) else {
                continue;
            };
            let Ok(g0) = find_g0(g, searcher.index(), &q) else {
                continue;
            };
            let methods: [(&str, Result<ctc_core::Community, _>); 3] = [
                ("basic", searcher.basic(&q, &cfg)),
                ("bulk_delete", searcher.bulk_delete(&q, &cfg)),
                ("local", searcher.local(&q, &cfg)),
            ];
            for (name, res) in methods {
                let c = res.unwrap_or_else(|e| panic!("{name} failed on feasible query: {e}"));
                assert!(c.contains_query(&q), "{name} dropped a query vertex");
                assert_eq!(
                    c.k, g0.k,
                    "{name} certified k != FindG0's k (seed {seed}, |Q|={qsize})"
                );
                c.validate(&q)
                    .unwrap_or_else(|e| panic!("{name} invalid: {e}"));
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 10,
        "only {checked} feasible planted queries — generator drifted?"
    );
}

#[test]
fn maintenance_stress_on_larger_graph() {
    // Deterministic, denser scenario: peel a mini-facebook community graph
    // vertex by vertex and verify invariants at every tenth step.
    let net = ctc_gen::mini_network("facebook", 3).unwrap();
    let g = net.graph;
    let d = truss_decomposition(&g);
    let k = d.max_truss.saturating_sub(1).max(3);
    let mut live = DynGraph::new(&g);
    let low: Vec<EdgeId> = g
        .edges()
        .filter(|&(e, _, _)| d.truss(e) < k)
        .map(|(e, _, _)| e)
        .collect();
    let mut m = TrussMaintainer::new(&live, k);
    m.delete_edges(&mut live, &low);
    m.check_invariants(&live).unwrap();
    let mut step = 0;
    while live.num_alive_vertices() > 0 {
        let v = live.alive_vertices().next().unwrap();
        m.delete_vertices(&mut live, &[v]);
        step += 1;
        if step % 10 == 0 {
            m.check_invariants(&live).unwrap();
        }
    }
    assert_eq!(live.num_alive_edges(), 0);
}
