//! End-to-end persistence pipeline: a searcher warm-started from a `.ctci`
//! snapshot must answer every algorithm's queries byte-identically to a
//! searcher built cold from the same graph (the ISSUE 3 acceptance bar).

use ctc::prelude::*;
use ctc_gen::random::erdos_renyi_nm;
use proptest::prelude::*;

/// Runs all four algorithms on both searchers and compares the full
/// answer, success or failure alike.
fn assert_answers_identical(cold: &CtcSearcher<'_>, warm: &CtcSearcher<'_>, q: &[VertexId]) {
    let cfg = CtcConfig::default();
    type Run<'a> = (
        &'a str,
        fn(&CtcSearcher<'_>, &[VertexId], &CtcConfig) -> ctc::graph::error::Result<Community>,
    );
    let runs: [Run; 4] = [
        ("basic", |s, q, c| s.basic(q, c)),
        ("bd", |s, q, c| s.bulk_delete(q, c)),
        ("lctc", |s, q, c| s.local(q, c)),
        ("truss", |s, q, c| s.truss_only(q, c)),
    ];
    for (name, run) in runs {
        match (run(cold, q, &cfg), run(warm, q, &cfg)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.k, b.k, "{name}: k diverged for {q:?}");
                assert_eq!(a.vertices, b.vertices, "{name}: members diverged for {q:?}");
                assert_eq!(a.edges, b.edges, "{name}: edges diverged for {q:?}");
                assert_eq!(
                    a.query_distance, b.query_distance,
                    "{name}: query distance diverged for {q:?}"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{name}: errors diverged for {q:?}"),
            other => panic!("{name}: cold/warm disagree for {q:?}: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn snapshot_searcher_matches_cold_searcher(
        n in 6usize..50,
        edges_per_vertex in 2usize..6,
        seed in 0u64..10_000,
        qa in 0usize..50,
        qb in 0usize..50,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        let snap = Snapshot::build(g.clone());
        let loaded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let cold = CtcSearcher::new(&g);
        let warm = CtcSearcher::from_snapshot(&loaded);
        let q1 = VertexId((qa % n) as u32);
        let q2 = VertexId((qb % n) as u32);
        assert_answers_identical(&cold, &warm, &[q1]);
        assert_answers_identical(&cold, &warm, &[q1, q2]);
    }
}

#[test]
fn engine_file_roundtrip_matches_cold_on_figure1() {
    let dir = std::env::temp_dir().join("ctc_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig1.ctci");
    let g = ctc::truss::fixtures::figure1_graph();
    let f = ctc::truss::fixtures::Figure1Ids::default();
    Snapshot::build(g.clone()).save(&path).unwrap();
    let engine = CommunityEngine::load(&path)
        .unwrap()
        .with_batch_parallelism(Parallelism::threads(4));
    let cold = CtcSearcher::new(&g);
    let q = vec![f.q1, f.q2, f.q3];
    let batch = vec![
        EngineQuery::new(q.clone()).algo(SearchAlgo::Basic),
        EngineQuery::new(q.clone()).algo(SearchAlgo::BulkDelete),
        EngineQuery::new(q.clone()).algo(SearchAlgo::Local),
        EngineQuery::new(q.clone()).algo(SearchAlgo::TrussOnly),
    ];
    let answers = engine.search_batch(&batch);
    let cfg = CtcConfig::default();
    let expect = [
        cold.basic(&q, &cfg).unwrap(),
        cold.bulk_delete(&q, &cfg).unwrap(),
        cold.local(&q, &cfg).unwrap(),
        cold.truss_only(&q, &cfg).unwrap(),
    ];
    for (got, want) in answers.iter().zip(&expect) {
        let got = got.as_ref().unwrap();
        assert_eq!(got.k, want.k);
        assert_eq!(got.vertices, want.vertices);
        assert_eq!(got.edges, want.edges);
    }
}
