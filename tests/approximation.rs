//! The paper's approximation guarantees, checked against brute force.
//!
//! For small graphs the optimal CTC is computable exactly: enumerate vertex
//! supersets of `Q`, peel each induced subgraph to its maximal k-truss, and
//! take the minimum diameter among connected candidates at the maximum
//! feasible trussness. (Taking the *maximal* k-truss per vertex set is
//! sound: adding edges over the same vertices never raises the diameter and
//! never breaks the truss condition, so some optimum is edge-maximal.)
//!
//! Theorem 3: `diam(Basic) ≤ 2·diam(OPT)`.
//! Theorem 6: `diam(BD) ≤ 2·diam(OPT) + 2`.

use ctc::prelude::*;
use ctc::truss::fixtures::{figure1_graph, Figure1Ids};
use ctc_graph::{
    diameter_exact, edge_supports, graph_from_edges, induced_subgraph, CsrGraph, DynGraph,
    VertexId, INF,
};
use proptest::prelude::*;

/// Maximal k-truss of `g` (peel edges with support < k−2 to fixpoint);
/// returns the surviving graph as a DynGraph snapshot materialized anew.
fn peel_to_ktruss(g: &CsrGraph, k: u32) -> CsrGraph {
    let mut live = DynGraph::new(g);
    loop {
        let doomed: Vec<_> = live
            .alive_edges()
            .filter(|&(_, u, v)| {
                let mut c = 0u32;
                live.for_each_common_neighbor(u, v, |_, _, _| c += 1);
                c + 2 < k
            })
            .map(|(e, _, _)| e)
            .collect();
        if doomed.is_empty() {
            break;
        }
        for e in doomed {
            live.remove_edge(e);
        }
    }
    ctc_graph::alive_subgraph(&live).graph
}

/// Exact CTC by exhaustive search: returns `(k_max, optimal diameter)`.
///
/// Only call on graphs with ≤ ~16 non-query vertices.
fn brute_force_ctc(g: &CsrGraph, q: &[VertexId]) -> Option<(u32, u32)> {
    let others: Vec<VertexId> = g.vertices().filter(|v| !q.contains(v)).collect();
    assert!(others.len() <= 16, "brute force explosion");
    let mut best: Option<(u32, u32)> = None; // (k, diameter)
    for mask in 0u32..(1 << others.len()) {
        let mut vs: Vec<VertexId> = q.to_vec();
        for (i, &v) in others.iter().enumerate() {
            if mask & (1 << i) != 0 {
                vs.push(v);
            }
        }
        let sub = induced_subgraph(g, &vs);
        let ql: Vec<VertexId> = match sub.locals(q) {
            Some(l) => l,
            None => continue,
        };
        // Try every k from high to low on this vertex set.
        for k in (2..=16u32).rev() {
            let peeled = peel_to_ktruss(&sub.graph, k);
            // Every query vertex must survive with at least one edge — a
            // bare vertex is not a k-truss community.
            if ql.iter().any(|&v| peeled.degree(v) == 0) {
                continue;
            }
            let mut scratch = ctc_graph::BfsScratch::new(peeled.num_vertices());
            if !ctc_graph::query_connected(&peeled, &ql, &mut scratch) {
                continue;
            }
            // Restrict to Q's component for the diameter.
            scratch.run(&peeled, ql[0]);
            let comp: Vec<VertexId> = scratch.reached().collect();
            let csub = induced_subgraph(&peeled, &comp);
            // The component of a k-truss peel is itself a k-truss? Induced
            // on component keeps exactly the component's edges ✓.
            let sup = edge_supports(&csub.graph);
            if sup.iter().any(|&s| s + 2 < k) || csub.num_edges() == 0 {
                continue;
            }
            let d = diameter_exact(&csub.graph);
            if d == INF {
                continue;
            }
            best = match best {
                None => Some((k, d)),
                Some((bk, bd)) => {
                    if k > bk || (k == bk && d < bd) {
                        Some((k, d))
                    } else {
                        Some((bk, bd))
                    }
                }
            };
            break; // higher k found for this set; lower k on same set can
                   // only matter if it had higher global k — handled by the
                   // max over sets
        }
    }
    best
}

#[test]
fn figure1_brute_force_confirms_example4() {
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let q = [f.q1, f.q2, f.q3];
    let (k, opt) = brute_force_ctc(&g, &q).expect("feasible");
    assert_eq!(k, 4);
    assert_eq!(opt, 3, "Figure 1(b) is optimal");
    let searcher = CtcSearcher::new(&g);
    let basic = searcher.basic(&q, &CtcConfig::default()).unwrap();
    assert_eq!(basic.k, k);
    assert!(basic.diameter() <= 2 * opt);
    // On this instance Basic is exactly optimal (Example 4).
    assert_eq!(basic.diameter(), opt);
}

#[test]
fn figure1_bd_within_guarantee() {
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let q = [f.q1, f.q2, f.q3];
    let (_, opt) = brute_force_ctc(&g, &q).expect("feasible");
    let searcher = CtcSearcher::new(&g);
    let bd = searcher.bulk_delete(&q, &CtcConfig::default()).unwrap();
    assert!(
        bd.diameter() <= 2 * opt + 2,
        "BD diameter {} vs bound {}",
        bd.diameter(),
        2 * opt + 2
    );
}

/// Random small graphs: every algorithm returns a valid community whose
/// trussness matches the brute-force max, and Basic honors the
/// 2-approximation.
fn check_on_graph(edges: &[(u32, u32)], q_raw: &[u32]) {
    let g = graph_from_edges(edges);
    if g.num_vertices() < 2 {
        return;
    }
    let q: Vec<VertexId> = q_raw
        .iter()
        .map(|&v| VertexId(v % g.num_vertices() as u32))
        .collect();
    let mut qd: Vec<VertexId> = q.clone();
    qd.sort();
    qd.dedup();
    if qd.iter().any(|&v| g.degree(v) == 0) {
        return;
    }
    let searcher = CtcSearcher::new(&g);
    let cfg = CtcConfig::default();
    let basic = match searcher.basic(&qd, &cfg) {
        Ok(c) => c,
        Err(_) => return, // disconnected query: nothing to check
    };
    let Some((k_opt, d_opt)) = brute_force_ctc(&g, &qd) else {
        panic!("algorithm found a community but brute force found none");
    };
    assert_eq!(basic.k, k_opt, "Basic must find the maximum trussness");
    assert!(
        basic.diameter() <= 2 * d_opt,
        "2-approximation violated: basic {} opt {}",
        basic.diameter(),
        d_opt
    );
    basic.validate(&qd).unwrap();
    let bd = searcher.bulk_delete(&qd, &cfg).unwrap();
    assert_eq!(bd.k, k_opt);
    assert!(bd.diameter() <= 2 * d_opt + 2, "BD bound violated");
    bd.validate(&qd).unwrap();
    let lctc = searcher.local(&qd, &cfg).unwrap();
    lctc.validate(&qd).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn approximation_holds_on_random_graphs(
        edges in proptest::collection::vec((0u32..10, 0u32..10), 8..28),
        q in proptest::collection::vec(0u32..10, 1..3),
    ) {
        check_on_graph(&edges, &q);
    }
}

#[test]
fn dense_small_graph_regression() {
    // Near-complete graph on 8 vertices with a few chords removed.
    let mut edges = Vec::new();
    for u in 0..8u32 {
        for v in (u + 1)..8 {
            if (u, v) != (0, 7) && (u, v) != (2, 5) {
                edges.push((u, v));
            }
        }
    }
    check_on_graph(&edges, &[0, 7]);
}
