//! Integration of the probabilistic extension with the generator stack:
//! uncertain planted networks end to end.

use ctc::prelude::*;
use ctc::prob::{monte_carlo_ctc, prob_truss_decomposition, ProbGraph};
use ctc_gen::planted_equal;

#[test]
fn mc_ctc_recovers_planted_circle_under_uncertainty() {
    let gt = planted_equal(6, 25, 0.7, 0.6, 91);
    let g = gt.graph.clone();
    let mut qgen = QueryGenerator::new(&g, 7);
    let (q, ci) = qgen.sample_from_ground_truth(&gt, 3).expect("query");
    let truth = &gt.communities[ci];
    // High but not certain edge reliability.
    let pg = ProbGraph::uniform(g, 0.9).unwrap();
    let mc = monte_carlo_ctc(&pg, &q, &CtcConfig::default(), 25, 5).expect("mc search");
    assert!(
        mc.query_reliability() > 0.5,
        "query too fragile: {}",
        mc.query_reliability()
    );
    let confident = mc.at_confidence(0.6);
    let f1 = f1_score(&confident, truth).f1;
    assert!(
        f1 > 0.3,
        "confident community misses the planted circle: F1 = {f1}"
    );
    // All query vertices are certain members.
    for &v in &q {
        assert!(mc.inclusion[v.index()] > 0.99);
    }
}

#[test]
fn prob_trussness_degrades_smoothly_with_reliability() {
    let gt = planted_equal(4, 20, 0.8, 0.4, 33);
    let g = gt.graph;
    let mut max_by_p = Vec::new();
    for p in [1.0, 0.9, 0.7, 0.5] {
        let pg = ProbGraph::uniform(g.clone(), p).unwrap();
        let d = prob_truss_decomposition(&pg, 0.5);
        max_by_p.push(d.max_truss);
    }
    // Lower reliability can only lower the confident trussness.
    assert!(
        max_by_p.windows(2).all(|w| w[0] >= w[1]),
        "prob trussness not monotone in p: {max_by_p:?}"
    );
    // The certain end of the sweep matches the deterministic decomposition.
    let det = ctc::truss::truss_decomposition(&g);
    assert_eq!(max_by_p[0], det.max_truss);
}
