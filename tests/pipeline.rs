//! End-to-end pipelines over generated networks: every algorithm, every
//! model, structural contracts on the results, and the free-rider-effect
//! argument of §3.2 checked mechanically.

use ctc::prelude::*;
use ctc_gen::{mini_network, planted_equal};
use ctc_graph::VertexId;

#[test]
fn full_pipeline_on_mini_facebook() {
    let net = mini_network("facebook", 11).unwrap();
    let g = &net.graph;
    let searcher = CtcSearcher::new(g);
    let cfg = CtcConfig::default();
    let mut qgen = QueryGenerator::new(g, 5);
    for trial in 0..10 {
        let Some((q, _)) = qgen.sample_from_ground_truth(&net, 2 + trial % 3) else {
            continue;
        };
        for (name, c) in [
            ("basic", searcher.basic(&q, &cfg)),
            ("bd", searcher.bulk_delete(&q, &cfg)),
            ("lctc", searcher.local(&q, &cfg)),
            ("truss", searcher.truss_only(&q, &cfg)),
        ] {
            let c = c.unwrap_or_else(|e| panic!("{name} failed on {q:?}: {e}"));
            c.validate(&q)
                .unwrap_or_else(|e| panic!("{name} invalid on {q:?}: {e}"));
            assert!(c.k >= 2);
            assert!(c.query_distance <= c.diameter());
            assert!(
                c.diameter() <= 2 * c.query_distance.max(1),
                "Lemma 2 violated for {name}"
            );
        }
    }
}

#[test]
fn peeled_algorithms_never_exceed_truss_size() {
    let net = mini_network("dblp", 13).unwrap();
    let g = &net.graph;
    let searcher = CtcSearcher::new(g);
    let cfg = CtcConfig::default();
    let mut qgen = QueryGenerator::new(g, 3);
    for _ in 0..8 {
        let Some(q) = qgen.sample(3, DegreeRank::top(0.8), 2) else {
            continue;
        };
        let Ok(g0) = searcher.truss_only(&q, &cfg) else {
            continue;
        };
        for c in [
            searcher.basic(&q, &cfg).unwrap(),
            searcher.bulk_delete(&q, &cfg).unwrap(),
        ] {
            assert_eq!(c.k, g0.k, "peeling must not change trussness");
            assert!(
                c.num_vertices() <= g0.num_vertices(),
                "peeled community larger than G0"
            );
        }
    }
}

#[test]
fn baselines_cover_query_on_planted_graph() {
    let gt = planted_equal(8, 25, 0.6, 1.0, 17);
    let g = &gt.graph;
    let mut qgen = QueryGenerator::new(g, 23);
    for _ in 0..6 {
        let Some((q, _)) = qgen.sample_from_ground_truth(&gt, 2) else {
            continue;
        };
        let m = mdc(g, &q, &MdcConfig::default()).expect("mdc");
        assert!(m.contains_query(&q));
        let kc = kcore_community(g, &q).expect("kcore");
        assert!(kc.contains_query(&q));
        let qd = qdc(
            g,
            &q,
            &QdcConfig {
                enforce_query_connectivity: true,
                ..Default::default()
            },
        )
        .expect("qdc safe mode");
        assert!(qd.contains_query(&q));
        qd.validate(&q).expect("qdc community connected");
    }
}

#[test]
fn truss_methods_beat_degree_methods_on_planted_truth() {
    // On a clean planted partition, LCTC should align with ground truth at
    // least as well as MDC (the paper's Fig. 12 ordering).
    let gt = planted_equal(12, 30, 0.6, 1.0, 31);
    let g = &gt.graph;
    let searcher = CtcSearcher::new(g);
    let cfg = CtcConfig::default();
    let mut qgen = QueryGenerator::new(g, 41);
    let mut lctc_total = 0.0;
    let mut mdc_total = 0.0;
    let mut n = 0;
    for _ in 0..15 {
        let Some((q, ci)) = qgen.sample_from_ground_truth(&gt, 3) else {
            continue;
        };
        let truth = &gt.communities[ci];
        let Ok(l) = searcher.local(&q, &cfg) else {
            continue;
        };
        let Ok(m) = mdc(g, &q, &MdcConfig::default()) else {
            continue;
        };
        lctc_total += f1_score(&l.vertices, truth).f1;
        mdc_total += f1_score(&m.vertices, truth).f1;
        n += 1;
    }
    assert!(n >= 5, "too few successful trials");
    assert!(
        lctc_total >= mdc_total * 0.9,
        "LCTC F1 sum {lctc_total:.2} unexpectedly below MDC {mdc_total:.2}"
    );
}

/// §3.2 / Proposition 1: merging the found community with a far-away dense
/// subgraph must not improve the goodness metric (diameter) — i.e. the
/// definition does not admit free riders.
#[test]
fn free_rider_effect_is_avoided() {
    use ctc::truss::fixtures::{figure1_graph, Figure1Ids};
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let q = [f.q1, f.q2];
    let searcher = CtcSearcher::new(&g);
    let c = searcher.basic(&q, &CtcConfig::default()).unwrap();
    let d_before = c.diameter();
    // Candidate free riders: the K4 {q3, p1, p2, p3} — a query-independent
    // 4-truss. Merge it in and recompute the diameter of the union.
    let mut merged: Vec<VertexId> = c.vertices.clone();
    for v in [f.q3, f.p1, f.p2, f.p3] {
        if !merged.contains(&v) {
            merged.push(v);
        }
    }
    let sub = ctc_graph::induced_subgraph(&g, &merged);
    let d_after = ctc_graph::diameter_exact(&sub.graph);
    assert!(
        d_after >= d_before,
        "free riders improved the metric: {d_after} < {d_before}"
    );
}

#[test]
fn tcp_model_contrast_from_intro() {
    // The intro's motivating failure: TCP has no community for
    // Q = {v4, q3, p1}, while CTC returns one.
    use ctc::truss::fixtures::{figure1_graph, Figure1Ids};
    use ctc::truss::tcp_feasible;
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let q = [f.v4, f.q3, f.p1];
    let idx = TrussIndex::build(&g);
    assert!(
        !tcp_feasible(&g, &idx, &q),
        "TCP should fail on the intro query"
    );
    let searcher = CtcSearcher::new(&g);
    let c = searcher.basic(&q, &CtcConfig::default()).unwrap();
    c.validate(&q).unwrap();
    assert!(c.k >= 2, "CTC finds a community where TCP cannot");
}

#[test]
fn serialization_roundtrip_preserves_search_results() {
    let net = mini_network("facebook", 19).unwrap();
    let g = &net.graph;
    let img = ctc_graph::io::to_bytes(g);
    let g2 = ctc_graph::io::from_bytes(&img).unwrap();
    assert_eq!(g, &g2);
    let mut qgen = QueryGenerator::new(g, 29);
    let q = qgen.sample(2, DegreeRank::top(0.5), 2).unwrap();
    let c1 = CtcSearcher::new(g)
        .basic(&q, &CtcConfig::default())
        .unwrap();
    let c2 = CtcSearcher::new(&g2)
        .basic(&q, &CtcConfig::default())
        .unwrap();
    assert_eq!(c1.vertices, c2.vertices);
    assert_eq!(c1.k, c2.k);
}
