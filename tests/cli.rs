//! End-to-end tests of the `ctc-cli` binary via its public interface.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ctc-cli"))
}

fn write_figure1(path: &std::path::Path) {
    let g = ctc::truss::fixtures::figure1_graph();
    ctc::graph::io::save_edge_list_path(&g, path).unwrap();
}

#[test]
fn stats_subcommand() {
    let dir = std::env::temp_dir().join("ctc_cli_test_stats");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    write_figure1(&file);
    let out = cli()
        .args(["stats", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("12"), "vertex count missing: {text}");
    assert!(text.contains("25"), "edge count missing: {text}");
}

#[test]
fn decompose_subcommand() {
    let dir = std::env::temp_dir().join("ctc_cli_test_decomp");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    write_figure1(&file);
    let out = cli()
        .args(["decompose", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Figure 1: 23 trussness-4 edges and 2 trussness-2 edges.
    assert!(text.contains("4"), "level 4 missing: {text}");
    assert!(text.contains("23"), "level-4 count missing: {text}");
}

#[test]
fn search_subcommand_finds_figure1b() {
    let dir = std::env::temp_dir().join("ctc_cli_test_search");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    write_figure1(&file);
    // Labels equal dense ids here (the writer emits dense ids): q1=0,q2=1,q3=2.
    let out = cli()
        .args([
            "search",
            file.to_str().unwrap(),
            "--query",
            "0,1,2",
            "--algo",
            "basic",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("k = 4"), "wrong trussness: {text}");
    assert!(text.contains("8 vertices"), "wrong size: {text}");
    assert!(text.contains("diameter 3"), "wrong diameter: {text}");
    assert!(
        !text.contains("timings:"),
        "phase timings must be opt-in: {text}"
    );
}

#[test]
fn search_timings_flag_prints_phases() {
    let dir = std::env::temp_dir().join("ctc_cli_test_timings");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    write_figure1(&file);
    let out = cli()
        .args([
            "search",
            file.to_str().unwrap(),
            "--query",
            "0,1,2",
            "--algo",
            "bd",
            "--timings",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let timings = text
        .lines()
        .find(|l| l.starts_with("timings:"))
        .unwrap_or_else(|| panic!("no timings line: {text}"));
    for phase in ["locate", "peel", "total"] {
        assert!(timings.contains(phase), "{phase} missing: {timings}");
    }
}

#[test]
fn search_with_threads_matches_serial_output() {
    let dir = std::env::temp_dir().join("ctc_cli_test_threads");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    write_figure1(&file);
    let run = |extra: &[&str]| {
        let mut args = vec!["search", file.to_str().unwrap(), "--query", "0,1,2"];
        args.extend_from_slice(extra);
        let out = cli().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "args {args:?} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The members line is timing-free and fully determined.
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("members:"))
            .expect("members line")
            .to_string()
    };
    let serial = run(&[]);
    for t in ["2", "4", "0"] {
        assert_eq!(run(&["--threads", t]), serial, "--threads {t} diverged");
    }
    // decompose with threads: identical histogram.
    let hist = |extra: &[&str]| {
        let mut args = vec!["decompose", file.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = cli().args(&args).output().unwrap();
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    assert_eq!(hist(&[]), hist(&["--threads", "4"]));
    // Malformed thread counts are a clean error, not a panic.
    let out = cli()
        .args(["stats", file.to_str().unwrap(), "--threads", "lots"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}

#[test]
fn index_build_then_search_matches_direct_search() {
    let dir = std::env::temp_dir().join("ctc_cli_test_index");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    let idx = dir.join("fig1.ctci");
    write_figure1(&file);
    let out = cli()
        .args([
            "index",
            "build",
            file.to_str().unwrap(),
            "-o",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "index build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(idx.exists());
    // `index info` reads the file back.
    let out = cli()
        .args(["index", "info", idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("12"), "vertex count missing: {text}");
    assert!(text.contains("25"), "edge count missing: {text}");
    // Warm search over the snapshot must answer exactly like direct search,
    // for every algorithm.
    let members = |args: &[&str]| {
        let out = cli().args(args).output().unwrap();
        assert!(
            out.status.success(),
            "args {args:?} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("members:"))
            .expect("members line")
            .to_string()
    };
    for algo in ["basic", "bd", "lctc", "truss"] {
        let direct = members(&[
            "search",
            file.to_str().unwrap(),
            "--query",
            "0,1,2",
            "--algo",
            algo,
        ]);
        let warm = members(&[
            "search",
            "--index",
            idx.to_str().unwrap(),
            "--query",
            "0,1,2",
            "--algo",
            algo,
        ]);
        assert_eq!(direct, warm, "--algo {algo} diverged on the warm path");
    }
}

#[test]
fn snapshot_preserves_original_labels() {
    // A graph whose file labels are NOT dense ids: the snapshot must carry
    // the label table so label-addressed queries keep working.
    let dir = std::env::temp_dir().join("ctc_cli_test_labels");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("tri.txt");
    let idx = dir.join("tri.ctci");
    std::fs::write(&file, "500 700\n700 900\n500 900\n").unwrap();
    let out = cli()
        .args([
            "index",
            "build",
            file.to_str().unwrap(),
            "-o",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = cli()
        .args([
            "search",
            "--index",
            idx.to_str().unwrap(),
            "--query",
            "500,900",
            "--algo",
            "basic",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("members: 500 700 900"),
        "original labels lost: {text}"
    );
    // A dense id that is not an original label must be rejected.
    let out = cli()
        .args(["search", "--index", idx.to_str().unwrap(), "--query", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn index_subcommand_error_paths() {
    let dir = std::env::temp_dir().join("ctc_cli_test_index_err");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    write_figure1(&file);
    // Missing -o.
    let out = cli()
        .args(["index", "build", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("-o"));
    // Unknown sub-subcommand.
    let out = cli().args(["index", "rebuild"]).output().unwrap();
    assert!(!out.status.success());
    // Corrupt snapshot file → clean error, not a panic.
    let bad = dir.join("bad.ctci");
    std::fs::write(&bad, b"CTCI garbage").unwrap();
    let out = cli()
        .args(["index", "info", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "unexpected stderr: {err}");
    let out = cli()
        .args(["search", "--index", bad.to_str().unwrap(), "--query", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn search_rejects_unknown_label_and_algo() {
    let dir = std::env::temp_dir().join("ctc_cli_test_err");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    write_figure1(&file);
    let out = cli()
        .args(["search", file.to_str().unwrap(), "--query", "999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = cli()
        .args([
            "search",
            file.to_str().unwrap(),
            "--query",
            "0",
            "--algo",
            "nope",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn usage_on_no_args() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn generate_mini_preset_writes_a_small_network() {
    let dir = std::env::temp_dir().join("ctc_cli_test_mini");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("mini_fb.txt");
    let out = cli()
        .args(["generate", "mini-facebook", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(file.exists());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("400 vertices"), "unexpected size: {text}");
    let out = cli()
        .args(["generate", "mini-nope", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn serve_subcommand_answers_and_shuts_down() {
    use std::io::{BufRead, BufReader, Read as _, Write as _};

    let dir = std::env::temp_dir().join("ctc_cli_test_serve");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fig1.txt");
    let idx = dir.join("fig1.ctci");
    write_figure1(&file);
    let out = cli()
        .args([
            "index",
            "build",
            file.to_str().unwrap(),
            "-o",
            idx.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Ephemeral port; the daemon prints the bound address on one line.
    let mut child = cli()
        .args([
            "serve",
            idx.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--cache-cap",
            "8",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    assert!(banner.contains("listening on"), "banner: {banner}");
    let addr: std::net::SocketAddr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in banner")
        .parse()
        .expect("parsable address");

    let request = |method: &str, target: &str, body: &str| -> (String, String) {
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(
            format!(
                "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        let mut response = Vec::new();
        conn.read_to_end(&mut response).unwrap();
        let text = String::from_utf8_lossy(&response);
        let (head, payload) = text.split_once("\r\n\r\n").expect("head/body split");
        (
            head.lines().next().unwrap().to_string(),
            payload.to_string(),
        )
    };

    let (status, payload) = request("POST", "/search", r#"{"query":[0,1,2],"algo":"basic"}"#);
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(payload.starts_with(r#"{"k":4,"#), "payload: {payload}");
    let (status, _) = request("GET", "/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let (status, _) = request("POST", "/shutdown", "");
    assert_eq!(status, "HTTP/1.1 200 OK");

    let code = child.wait().unwrap();
    assert!(code.success(), "serve must exit 0 after graceful shutdown");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drained"), "drain report missing: {rest}");
}
