//! Concurrency soak test for `ctc-serve`: a real server on a loopback
//! ephemeral port, hammered by concurrent clients, with every served
//! answer checked byte-for-byte against a direct [`CommunityEngine`]
//! answer, then a graceful shutdown with no thread leak.

use ctc::prelude::*;
use ctc::server::wire::encode_community;
use ctc::server::{CtcServer, ServeConfig};
use ctc_core::SearchAlgo;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 50;

/// One scripted request: body, expected status, expected exact payload
/// (None = only check the status and that the payload is an error body).
struct Case {
    body: String,
    status: &'static str,
    payload: Option<Vec<u8>>,
}

fn algo_name(algo: SearchAlgo) -> &'static str {
    match algo {
        SearchAlgo::Basic => "basic",
        SearchAlgo::BulkDelete => "bd",
        SearchAlgo::Local => "lctc",
        SearchAlgo::TrussOnly => "truss",
    }
}

/// Sends one request on a fresh connection and returns `(status line,
/// payload bytes)`.
fn roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> (String, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(raw.as_bytes()).expect("write request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = String::from_utf8_lossy(&response[..head_end]);
    let status = head.lines().next().unwrap_or("").to_string();
    (status, response[head_end + 4..].to_vec())
}

#[test]
fn soak_concurrent_clients_get_byte_identical_answers_then_clean_shutdown() {
    let engine = CommunityEngine::build(ctc::truss::fixtures::figure1_graph());
    let f = ctc::truss::fixtures::Figure1Ids::default();

    // The request mix: all four algorithms × several label sets (orders
    // scrambled — the server normalizes), plus unknown-label and
    // malformed cases whose failures must stay per-request.
    let algos = [
        SearchAlgo::Basic,
        SearchAlgo::BulkDelete,
        SearchAlgo::Local,
        SearchAlgo::TrussOnly,
    ];
    let label_sets: Vec<Vec<u32>> = vec![
        vec![f.q1.0, f.q2.0, f.q3.0],
        vec![f.q3.0, f.q1.0], // scrambled order
        vec![f.q2.0],
        vec![f.t.0],
        vec![f.p1.0, f.q1.0],
    ];
    let mut cases: Vec<Case> = Vec::new();
    for algo in algos {
        for labels in &label_sets {
            // Expected payload = direct engine answer on the same set.
            let q: Vec<VertexId> = labels.iter().map(|&l| VertexId(l)).collect();
            let direct = engine.search(&q, algo).expect("direct answer");
            let expected = encode_community(&engine, &direct);
            let ids = labels
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",");
            cases.push(Case {
                body: format!(r#"{{"query":[{ids}],"algo":"{}"}}"#, algo_name(algo)),
                status: "HTTP/1.1 200 OK",
                payload: Some(expected),
            });
        }
        // Unknown label: per-request 404, must not poison neighbors.
        cases.push(Case {
            body: format!(r#"{{"query":[999],"algo":"{}"}}"#, algo_name(algo)),
            status: "HTTP/1.1 404 Not Found",
            payload: Some(br#"{"error":"label 999 not in graph"}"#.to_vec()),
        });
    }
    // Malformed body: per-request 400.
    cases.push(Case {
        body: "{broken".into(),
        status: "HTTP/1.1 400 Bad Request",
        payload: None,
    });

    let server = CtcServer::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            pool: Parallelism::threads(4),
            // Above the 20 distinct hot keys, so every repeat is a
            // guaranteed hit (eviction determinism is pinned by the
            // LruCache unit tests; a cyclic access pattern over a
            // smaller-than-working-set LRU can legally never hit).
            cache_cap: 32,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());

    // ≥8 client threads × ≥50 requests, each walking the case list from
    // a different offset so the algorithms and failures interleave.
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let cases = &cases;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let case = &cases[(client * 7 + i) % cases.len()];
                    let (status, payload) = roundtrip(addr, "POST", "/search", &case.body);
                    assert_eq!(
                        status, case.status,
                        "client {client} request {i} body {}",
                        case.body
                    );
                    match &case.payload {
                        Some(expected) => assert_eq!(
                            &payload, expected,
                            "client {client} request {i}: served bytes diverge from the \
                             direct engine answer for {}",
                            case.body
                        ),
                        None => assert!(
                            payload.starts_with(br#"{"error":"#),
                            "client {client} request {i}: expected an error body"
                        ),
                    }
                }
            });
        }
    });

    // The health and stats endpoints answer under load aftermath.
    let (status, payload) = roundtrip(addr, "GET", "/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(payload, br#"{"status":"ok"}"#);
    let (status, payload) = roundtrip(addr, "GET", "/stats", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let stats_text = String::from_utf8(payload).unwrap();
    assert!(stats_text.contains(r#""num_vertices":12"#), "{stats_text}");

    // Counter arithmetic: every request was routed and tallied.
    let total_sent = (CLIENTS * REQUESTS_PER_CLIENT) as u64 + 2;
    let c = handle.counters();
    assert_eq!(c.total, total_sent, "all requests routed: {c:?}");
    assert_eq!(
        c.search_ok + c.search_err,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "every /search accounted: {c:?}"
    );
    assert!(c.search_err > 0, "failure cases ran: {c:?}");
    assert!(
        c.cache_hits > 0,
        "a 400-request soak over 20 hot keys must hit the cache: {c:?}"
    );
    assert!(
        c.cache_misses >= 20,
        "every distinct key misses at least once: {c:?}"
    );
    assert_eq!(c.cache_hits + c.cache_misses, c.search_ok, "{c:?}");

    // Graceful shutdown: serve() returns (all workers joined — the scoped
    // pool cannot leak threads past this join), and the port stops
    // accepting.
    handle.shutdown();
    let report = serve_thread.join().expect("serve thread panicked");
    assert_eq!(report.counters.total, total_sent);
    assert!(
        report.connections >= total_sent,
        "one connection per request"
    );
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be gone after shutdown"
    );
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let engine = CommunityEngine::build(ctc::truss::fixtures::figure1_graph());
    let f = ctc::truss::fixtures::Figure1Ids::default();
    let direct = engine.search(&[f.q2], SearchAlgo::Local).unwrap();
    let expected = encode_community(&engine, &direct);
    let server = CtcServer::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());

    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = format!(r#"{{"query":[{}]}}"#, f.q2.0);
    for round in 0..3 {
        let raw = format!(
            "POST /search HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        conn.write_all(raw.as_bytes()).unwrap();
        // Read exactly one response: head, then content-length bytes.
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            conn.read_exact(&mut byte).unwrap();
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"), "round {round}: {head}");
        assert!(head.contains("connection: keep-alive"), "round {round}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .parse()
            .unwrap();
        let mut payload = vec![0u8; len];
        conn.read_exact(&mut payload).unwrap();
        assert_eq!(payload, expected, "round {round}");
    }
    drop(conn);
    handle.shutdown();
    serve_thread.join().unwrap();
}

#[test]
fn shutdown_with_zero_traffic_returns_promptly() {
    let engine = CommunityEngine::build(ctc::truss::fixtures::figure1_graph());
    let server = CtcServer::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            pool: Parallelism::threads(3),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());
    std::thread::sleep(Duration::from_millis(30));
    handle.shutdown();
    // Join must complete quickly; a leaked worker or stuck acceptor would
    // hang here (and trip the harness timeout).
    let report = serve_thread.join().expect("serve returned");
    assert_eq!(report.counters.total, 0);
}
