//! Concurrency soak test for `ctc-serve`: a real server on a loopback
//! ephemeral port, hammered by concurrent clients, with every served
//! answer checked byte-for-byte against a direct [`CommunityEngine`]
//! answer, then a graceful shutdown with no thread leak.

use ctc::prelude::*;
use ctc::server::wire::encode_community;
use ctc::server::{CtcServer, ServeConfig};
use ctc_core::SearchAlgo;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 50;

/// One scripted request: body, expected status, expected exact payload
/// (None = only check the status and that the payload is an error body).
struct Case {
    body: String,
    status: &'static str,
    payload: Option<Vec<u8>>,
}

fn algo_name(algo: SearchAlgo) -> &'static str {
    match algo {
        SearchAlgo::Basic => "basic",
        SearchAlgo::BulkDelete => "bd",
        SearchAlgo::Local => "lctc",
        SearchAlgo::TrussOnly => "truss",
    }
}

/// Sends one request on a fresh connection and returns `(status line,
/// payload bytes)`.
fn roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> (String, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(raw.as_bytes()).expect("write request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = String::from_utf8_lossy(&response[..head_end]);
    let status = head.lines().next().unwrap_or("").to_string();
    (status, response[head_end + 4..].to_vec())
}

#[test]
fn soak_concurrent_clients_get_byte_identical_answers_then_clean_shutdown() {
    let engine = CommunityEngine::build(ctc::truss::fixtures::figure1_graph());
    let f = ctc::truss::fixtures::Figure1Ids::default();

    // The request mix: all four algorithms × several label sets (orders
    // scrambled — the server normalizes), plus unknown-label and
    // malformed cases whose failures must stay per-request.
    let algos = [
        SearchAlgo::Basic,
        SearchAlgo::BulkDelete,
        SearchAlgo::Local,
        SearchAlgo::TrussOnly,
    ];
    let label_sets: Vec<Vec<u32>> = vec![
        vec![f.q1.0, f.q2.0, f.q3.0],
        vec![f.q3.0, f.q1.0], // scrambled order
        vec![f.q2.0],
        vec![f.t.0],
        vec![f.p1.0, f.q1.0],
    ];
    let mut cases: Vec<Case> = Vec::new();
    for algo in algos {
        for labels in &label_sets {
            // Expected payload = direct engine answer on the same set.
            let q: Vec<VertexId> = labels.iter().map(|&l| VertexId(l)).collect();
            let direct = engine.search(&q, algo).expect("direct answer");
            let expected = encode_community(&engine, &direct);
            let ids = labels
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",");
            cases.push(Case {
                body: format!(r#"{{"query":[{ids}],"algo":"{}"}}"#, algo_name(algo)),
                status: "HTTP/1.1 200 OK",
                payload: Some(expected),
            });
        }
        // Unknown label: per-request 404, must not poison neighbors.
        cases.push(Case {
            body: format!(r#"{{"query":[999],"algo":"{}"}}"#, algo_name(algo)),
            status: "HTTP/1.1 404 Not Found",
            payload: Some(br#"{"error":"label 999 not in graph"}"#.to_vec()),
        });
    }
    // Malformed body: per-request 400.
    cases.push(Case {
        body: "{broken".into(),
        status: "HTTP/1.1 400 Bad Request",
        payload: None,
    });

    let server = CtcServer::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            pool: Parallelism::threads(4),
            // Above the 20 distinct hot keys, so every repeat is a
            // guaranteed hit (eviction determinism is pinned by the
            // LruCache unit tests; a cyclic access pattern over a
            // smaller-than-working-set LRU can legally never hit).
            cache_cap: 32,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());

    // ≥8 client threads × ≥50 requests, each walking the case list from
    // a different offset so the algorithms and failures interleave.
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let cases = &cases;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let case = &cases[(client * 7 + i) % cases.len()];
                    let (status, payload) = roundtrip(addr, "POST", "/search", &case.body);
                    assert_eq!(
                        status, case.status,
                        "client {client} request {i} body {}",
                        case.body
                    );
                    match &case.payload {
                        Some(expected) => assert_eq!(
                            &payload, expected,
                            "client {client} request {i}: served bytes diverge from the \
                             direct engine answer for {}",
                            case.body
                        ),
                        None => assert!(
                            payload.starts_with(br#"{"error":"#),
                            "client {client} request {i}: expected an error body"
                        ),
                    }
                }
            });
        }
    });

    // The health and stats endpoints answer under load aftermath.
    let (status, payload) = roundtrip(addr, "GET", "/healthz", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(payload, br#"{"status":"ok"}"#);
    let (status, payload) = roundtrip(addr, "GET", "/stats", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let stats_text = String::from_utf8(payload).unwrap();
    assert!(stats_text.contains(r#""num_vertices":12"#), "{stats_text}");

    // Counter arithmetic: every request was routed and tallied.
    let total_sent = (CLIENTS * REQUESTS_PER_CLIENT) as u64 + 2;
    let c = handle.counters();
    assert_eq!(c.total, total_sent, "all requests routed: {c:?}");
    assert_eq!(
        c.search_ok + c.search_err,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "every /search accounted: {c:?}"
    );
    assert!(c.search_err > 0, "failure cases ran: {c:?}");
    assert!(
        c.cache_hits > 0,
        "a 400-request soak over 20 hot keys must hit the cache: {c:?}"
    );
    assert!(
        c.cache_misses >= 20,
        "every distinct key misses at least once: {c:?}"
    );
    assert_eq!(c.cache_hits + c.cache_misses, c.search_ok, "{c:?}");

    // Graceful shutdown: serve() returns (all workers joined — the scoped
    // pool cannot leak threads past this join), and the port stops
    // accepting.
    handle.shutdown();
    let report = serve_thread.join().expect("serve thread panicked");
    assert_eq!(report.counters.total, total_sent);
    assert!(
        report.connections >= total_sent,
        "one connection per request"
    );
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be gone after shutdown"
    );
}

/// Extracts `"key":<uint>` from a JSON fragment (enough for the fixed
/// server encodings; no full parser needed client-side).
fn json_uint(fragment: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let i = fragment.find(&pat).expect(key) + pat.len();
    fragment[i..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect(key)
}

/// Concurrent online updates racing live searches: writer threads toggle
/// one structurally load-bearing edge (`v1`–`v2` of the K4 in Figure 1)
/// through `POST /update` while reader threads hammer `POST /search`.
/// Every served answer must be byte-identical to the direct engine answer
/// on either the pre-update or the post-update graph — a torn read (any
/// third byte sequence) fails the test. Afterwards the `/stats` update
/// counters must sum exactly against the per-response outcomes.
#[test]
fn soak_updates_race_searches_without_torn_reads() {
    const WRITERS: usize = 3;
    const OPS_PER_WRITER: usize = 24;
    const READERS: usize = 4;
    const READS_PER_READER: usize = 32;

    let f = ctc::truss::fixtures::Figure1Ids::default();
    let algos = [
        SearchAlgo::Basic,
        SearchAlgo::BulkDelete,
        SearchAlgo::Local,
        SearchAlgo::TrussOnly,
    ];
    let query = [f.q1, f.q2];

    // The two oracles: the graph with the toggled edge, and without it.
    // Deleting (v1, v2) breaks the K4 {q1, q2, v1, v2}, so the answer for
    // {q1, q2} genuinely changes between the two states.
    let with_engine = CommunityEngine::build(ctc::truss::fixtures::figure1_graph());
    let without_engine = {
        let mut e = CommunityEngine::build(ctc::truss::fixtures::figure1_graph());
        e.delete_edge(f.v1, f.v2).expect("edge exists in figure 1");
        e
    };
    let mut oracle_with = Vec::new();
    let mut oracle_without = Vec::new();
    for algo in algos {
        let a = with_engine.search(&query, algo).unwrap();
        let b = without_engine.search(&query, algo).unwrap();
        oracle_with.push(encode_community(&with_engine, &a));
        oracle_without.push(encode_community(&without_engine, &b));
    }
    assert_ne!(
        oracle_with, oracle_without,
        "the toggled edge must change at least one answer"
    );

    let server = CtcServer::bind(
        CommunityEngine::build(ctc::truss::fixtures::figure1_graph()),
        "127.0.0.1:0",
        ServeConfig {
            pool: Parallelism::threads(4),
            cache_cap: 32,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());

    let delete_body = format!(
        r#"{{"updates":[{{"op":"delete","u":{},"v":{}}}]}}"#,
        f.v1.0, f.v2.0
    );
    let insert_body = format!(
        r#"{{"updates":[{{"op":"insert","u":{},"v":{}}}]}}"#,
        f.v1.0, f.v2.0
    );

    // (applied, rejected, publications) tallied from every 200 response.
    use std::sync::atomic::{AtomicU64, Ordering};
    let applied = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let publications = AtomicU64::new(0);
    let bad_batches = AtomicU64::new(0);
    let ok_batches = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let (delete_body, insert_body) = (&delete_body, &insert_body);
            let (applied, rejected, publications, bad_batches, ok_batches) = (
                &applied,
                &rejected,
                &publications,
                &bad_batches,
                &ok_batches,
            );
            scope.spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    // Alternate single-op delete/insert requests; with
                    // three writers racing on one edge, a share of ops is
                    // rejected (duplicate/missing) — by design, so the
                    // accounting below covers both outcome paths.
                    let body = if (w + i) % 2 == 0 {
                        delete_body
                    } else {
                        insert_body
                    };
                    if i == OPS_PER_WRITER / 2 {
                        // One malformed batch per writer: must 400 without
                        // disturbing the graph or the counters' arithmetic.
                        let (status, _) = roundtrip(addr, "POST", "/update", r#"{"updates":[]}"#);
                        assert_eq!(status, "HTTP/1.1 400 Bad Request");
                        bad_batches.fetch_add(1, Ordering::Relaxed);
                    }
                    let (status, payload) = roundtrip(addr, "POST", "/update", body);
                    assert_eq!(status, "HTTP/1.1 200 OK", "writer {w} op {i}");
                    let text = String::from_utf8(payload).unwrap();
                    let a = json_uint(&text, "applied");
                    let r = json_uint(&text, "rejected");
                    assert_eq!(a + r, 1, "single-op batch: {text}");
                    applied.fetch_add(a, Ordering::Relaxed);
                    rejected.fetch_add(r, Ordering::Relaxed);
                    if a > 0 {
                        publications.fetch_add(1, Ordering::Relaxed);
                    }
                    ok_batches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for r in 0..READERS {
            let (oracle_with, oracle_without) = (&oracle_with, &oracle_without);
            scope.spawn(move || {
                for i in 0..READS_PER_READER {
                    let ai = (r + i) % algos.len();
                    let body = format!(
                        r#"{{"query":[{},{}],"algo":"{}"}}"#,
                        f.q1.0,
                        f.q2.0,
                        algo_name(algos[ai])
                    );
                    let (status, payload) = roundtrip(addr, "POST", "/search", &body);
                    assert_eq!(status, "HTTP/1.1 200 OK", "reader {r} read {i}");
                    assert!(
                        payload == oracle_with[ai] || payload == oracle_without[ai],
                        "reader {r} read {i} ({}): torn read — answer matches neither \
                         the pre-update nor the post-update oracle: {}",
                        algo_name(algos[ai]),
                        String::from_utf8_lossy(&payload)
                    );
                }
            });
        }
    });

    // Reconcile: force the edge back to present (applied or rejected-as-
    // duplicate are both fine), after which every algorithm must answer
    // exactly the with-edge oracle again — including through the cache.
    let (status, payload) = roundtrip(addr, "POST", "/update", &insert_body);
    assert_eq!(status, "HTTP/1.1 200 OK");
    let text = String::from_utf8(payload).unwrap();
    let a = json_uint(&text, "applied");
    applied.fetch_add(a, Ordering::Relaxed);
    rejected.fetch_add(json_uint(&text, "rejected"), Ordering::Relaxed);
    if a > 0 {
        publications.fetch_add(1, Ordering::Relaxed);
    }
    ok_batches.fetch_add(1, Ordering::Relaxed);
    for (ai, algo) in algos.into_iter().enumerate() {
        let body = format!(
            r#"{{"query":[{},{}],"algo":"{}"}}"#,
            f.q1.0,
            f.q2.0,
            algo_name(algo)
        );
        for round in 0..2 {
            // Twice: a cache miss then a guaranteed hit, same bytes.
            let (status, payload) = roundtrip(addr, "POST", "/search", &body);
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert_eq!(
                payload,
                oracle_with[ai],
                "post-reconcile answer for {} (round {round}) must match the \
                 with-edge oracle",
                algo_name(algo)
            );
        }
    }

    // Counter arithmetic: the /stats updates object sums exactly against
    // the per-response outcomes observed client-side.
    let (status, payload) = roundtrip(addr, "GET", "/stats", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let stats_text = String::from_utf8(payload).unwrap();
    let upd_start = stats_text.find(r#""updates":{"#).expect("updates object");
    let upd = &stats_text[upd_start..stats_text[upd_start..].find('}').unwrap() + upd_start + 1];
    assert_eq!(
        json_uint(upd, "applied"),
        applied.load(Ordering::Relaxed),
        "{upd}"
    );
    assert_eq!(
        json_uint(upd, "rejected"),
        rejected.load(Ordering::Relaxed),
        "{upd}"
    );
    assert_eq!(
        json_uint(upd, "batches_ok"),
        ok_batches.load(Ordering::Relaxed),
        "{upd}"
    );
    assert_eq!(
        json_uint(upd, "batches_err"),
        bad_batches.load(Ordering::Relaxed),
        "{upd}"
    );
    assert_eq!(
        json_uint(upd, "epoch"),
        publications.load(Ordering::Relaxed),
        "{upd}"
    );
    assert!(
        applied.load(Ordering::Relaxed) > 0,
        "some toggles must land"
    );
    assert!(
        rejected.load(Ordering::Relaxed) > 0,
        "racing writers on one edge must produce rejections"
    );

    handle.shutdown();
    serve_thread.join().expect("serve thread panicked");
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let engine = CommunityEngine::build(ctc::truss::fixtures::figure1_graph());
    let f = ctc::truss::fixtures::Figure1Ids::default();
    let direct = engine.search(&[f.q2], SearchAlgo::Local).unwrap();
    let expected = encode_community(&engine, &direct);
    let server = CtcServer::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());

    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = format!(r#"{{"query":[{}]}}"#, f.q2.0);
    for round in 0..3 {
        let raw = format!(
            "POST /search HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        conn.write_all(raw.as_bytes()).unwrap();
        // Read exactly one response: head, then content-length bytes.
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            conn.read_exact(&mut byte).unwrap();
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"), "round {round}: {head}");
        assert!(head.contains("connection: keep-alive"), "round {round}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .parse()
            .unwrap();
        let mut payload = vec![0u8; len];
        conn.read_exact(&mut payload).unwrap();
        assert_eq!(payload, expected, "round {round}");
    }
    drop(conn);
    handle.shutdown();
    serve_thread.join().unwrap();
}

#[test]
fn shutdown_with_zero_traffic_returns_promptly() {
    let engine = CommunityEngine::build(ctc::truss::fixtures::figure1_graph());
    let server = CtcServer::bind(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            pool: Parallelism::threads(3),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());
    std::thread::sleep(Duration::from_millis(30));
    handle.shutdown();
    // Join must complete quickly; a leaked worker or stuck acceptor would
    // hang here (and trip the harness timeout).
    let report = serve_thread.join().expect("serve returned");
    assert_eq!(report.counters.total, 0);
}
