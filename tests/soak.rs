//! Evented-serving soak: one server, two named tenants, ≥1000 concurrent
//! keep-alive connections multiplexed through the poll(2) readiness loop,
//! plus hostile clients — slow-loris tricklers and an accept flood past
//! `max_conns` — all shed with well-formed responses while the counter
//! arithmetic stays exact.
//!
//! The sizing exercises the tentpole claim directly: the worker pool has
//! 2 threads, so nothing short of readiness multiplexing can hold 1000
//! idle connections open while continuing to answer on all of them.

#![cfg(unix)]

use ctc::prelude::*;
use ctc::server::DEFAULT_TENANT;
use ctc::truss::fixtures::{figure1_graph, Figure1Ids};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Keep-alive connections held open simultaneously.
const CONNS: usize = 1000;
/// Request rounds over every keep-alive connection.
const ROUNDS: usize = 3;
/// Slow-loris clients: partial request head, then silence.
const LORIS: usize = 20;
/// Flood connections raced against the admission cap.
const FLOOD: usize = 150;
/// Admission cap: CONNS + LORIS fit, then FLOOD splits 80 / 70.
const MAX_CONNS: usize = 1100;
/// No complete request within this window → the connection is dropped.
/// Generous on purpose: a phase-A round (1000 writes + 1000 reads over a
/// 2-thread pool on a possibly oversubscribed CI box) must finish well
/// inside it, or live connections get reaped mid-round and the test
/// flakes with spurious EOFs. Phases C/D overlap their waits, so the
/// test's wall time grows by far less than the deadline does.
const DEADLINE: Duration = Duration::from_secs(10);

/// Reads exactly one keep-alive HTTP response (head + content-length
/// body) and returns `(status line, body)`.
fn read_response(conn: &mut TcpStream, scratch: &mut Vec<u8>) -> (String, Vec<u8>) {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&scratch[..head_end]).to_string();
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length: "))
                .expect("response has a content-length")
                .parse()
                .expect("numeric content-length");
            let body_start = head_end + 4;
            while scratch.len() < body_start + len {
                let n = conn.read(&mut chunk).expect("read body");
                assert!(n > 0, "EOF mid-body");
                scratch.extend_from_slice(&chunk[..n]);
            }
            let body = scratch[body_start..body_start + len].to_vec();
            scratch.drain(..body_start + len);
            let status = head.lines().next().unwrap_or("").to_string();
            return (status, body);
        }
        let n = conn.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF mid-head");
        scratch.extend_from_slice(&chunk[..n]);
    }
}

fn search_body() -> String {
    let f = Figure1Ids::default();
    format!(
        r#"{{"query":[{},{},{}],"algo":"basic"}}"#,
        f.q1.0, f.q2.0, f.q3.0
    )
}

fn request_bytes(target: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {target} HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn thousand_connection_soak_with_hostile_clients() {
    let cfg = ServeConfig {
        pool: Parallelism::threads(2),
        max_conns: MAX_CONNS,
        queue_cap: 2048,
        request_deadline: DEADLINE,
        ..ServeConfig::default()
    };
    let state = Arc::new(AppState::new(CommunityEngine::build(figure1_graph()), &cfg));
    state
        .add_tenant_engine("fb", CommunityEngine::build(figure1_graph()))
        .expect("register fb tenant");
    let server = CtcServer::bind_state(Arc::clone(&state), "127.0.0.1:0", &cfg).expect("bind");
    let addr: SocketAddr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve());

    // Phase A: CONNS keep-alive connections, ROUNDS requests each,
    // alternating the bare default-tenant path and the named tenant.
    // Writes go out as a batch so the server pipelines the round through
    // its 2 workers while the client iterates.
    let body = search_body();
    let mut conns: Vec<(TcpStream, Vec<u8>)> = (0..CONNS)
        .map(|_| {
            let conn = TcpStream::connect(addr).expect("connect keep-alive");
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            (conn, Vec::new())
        })
        .collect();
    for _round in 0..ROUNDS {
        for (i, (conn, _)) in conns.iter_mut().enumerate() {
            let target = if i % 2 == 0 {
                "/search"
            } else {
                "/t/fb/search"
            };
            conn.write_all(&request_bytes(target, &body))
                .expect("write round");
        }
        for (i, (conn, scratch)) in conns.iter_mut().enumerate() {
            let (status, payload) = read_response(conn, scratch);
            assert!(status.starts_with("HTTP/1.1 200 OK"), "conn {i}: {status}");
            assert!(!payload.is_empty(), "conn {i}: empty answer");
        }
    }
    // Both tenants answered the same query on the same graph: identical
    // community bytes through either path.
    {
        let (c0, s0) = &mut conns[0];
        c0.write_all(&request_bytes("/search", &body)).unwrap();
        let a = read_response(c0, s0).1;
        let (c1, s1) = &mut conns[1];
        c1.write_all(&request_bytes("/t/fb/search", &body)).unwrap();
        let b = read_response(c1, s1).1;
        assert_eq!(a, b, "tenant answers diverged");
        // Those two extra requests keep the per-tenant split exact.
    }

    // Phase B: slow-loris clients trickle a partial head and stall. The
    // readiness loop must keep them on a pollfd, not a worker.
    let loris: Vec<TcpStream> = (0..LORIS)
        .map(|_| {
            let mut conn = TcpStream::connect(addr).expect("connect loris");
            conn.write_all(b"GET /healthz HTT").expect("trickle");
            conn
        })
        .collect();

    // Phase C: flood past the admission cap. 1020 connections are open,
    // so exactly MAX_CONNS - 1020 = 80 floods are admitted (and then
    // idle into their deadline) and 70 are shed with a well-formed 503.
    let flood: Vec<TcpStream> = (0..FLOOD)
        .map(|_| {
            let conn = TcpStream::connect(addr).expect("connect flood");
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            conn
        })
        .collect();
    let (mut shed, mut idle_dropped) = (0usize, 0usize);
    for mut conn in flood {
        let mut response = Vec::new();
        conn.read_to_end(&mut response).expect("read flood outcome");
        if response.is_empty() {
            // Admitted, never spoke, dropped at the request deadline.
            idle_dropped += 1;
        } else {
            let text = String::from_utf8_lossy(&response);
            assert!(
                text.starts_with("HTTP/1.1 503 Service Unavailable"),
                "flood response: {text}"
            );
            assert!(text.contains("connection: close"), "{text}");
            assert!(
                text.contains(r#"{"error":"#),
                "503 body must be JSON: {text}"
            );
            shed += 1;
        }
    }
    assert_eq!(
        (shed, idle_dropped),
        (
            FLOOD - (MAX_CONNS - CONNS - LORIS),
            MAX_CONNS - CONNS - LORIS
        ),
        "admission split must be exact"
    );

    // The loris clients are dropped at the deadline without a response.
    for mut conn in loris {
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut response = Vec::new();
        let n = conn.read_to_end(&mut response).unwrap_or(0);
        assert_eq!(n, 0, "loris must be dropped responseless");
    }

    // Phase D: by now every connection (keep-alive, loris, admitted
    // floods) has idled past the deadline. Wait for the loop to reap
    // them all, then check the books.
    drop(conns);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = handle.server_counters();
        if (s.open_conns, s.queued) == (0, 0) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let s = handle.server_counters();
    assert_eq!(s.open_conns, 0, "no connection may leak: {s:?}");
    assert_eq!(s.queued, 0, "dispatch queue must drain: {s:?}");
    assert_eq!(s.accepted as usize, CONNS + LORIS + FLOOD, "{s:?}");
    assert_eq!(s.admitted as usize, MAX_CONNS, "{s:?}");
    assert_eq!(
        s.sheds_accept as usize,
        FLOOD - (MAX_CONNS - CONNS - LORIS),
        "{s:?}"
    );
    assert_eq!(s.sheds_queue, 0, "{s:?}");
    assert_eq!(
        s.deadline_drops as usize, MAX_CONNS,
        "every admitted conn idled out: {s:?}"
    );
    assert_eq!(s.panics, 0, "{s:?}");

    // Exact per-tenant arithmetic: ROUNDS * CONNS requests split evenly,
    // plus the two divergence-check requests.
    let half = (ROUNDS * CONNS / 2 + 1) as u64;
    let default = state
        .registry()
        .counters_of(DEFAULT_TENANT)
        .expect("default counters");
    let fb = state.registry().counters_of("fb").expect("fb counters");
    assert_eq!(default.search_ok.load(Ordering::SeqCst), half);
    assert_eq!(fb.search_ok.load(Ordering::SeqCst), half);
    assert_eq!(default.in_flight.load(Ordering::SeqCst), 0);
    assert_eq!(fb.in_flight.load(Ordering::SeqCst), 0);
    let c = handle.counters();
    assert_eq!(c.search_ok, 2 * half, "global total is the tenant sum");
    assert_eq!(c.search_err, 0);
    assert_eq!(
        c.cache_hits + c.cache_misses,
        c.search_ok,
        "every 200 is a hit or a miss: {c:?}"
    );

    // Graceful drain: the server still answers and then exits cleanly.
    handle.shutdown();
    let report = join.join().expect("serve thread panicked");
    assert_eq!(report.server.open_conns, 0);
    assert_eq!(report.connections as usize, MAX_CONNS);
}
